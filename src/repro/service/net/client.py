"""The retrying network client for the optimization service.

:class:`NetworkServiceClient` speaks the JSON-lines dialect of
:mod:`repro.service.net.protocol` over a plain blocking socket and
duck-types :class:`~repro.service.client.ServiceClient` — ``optimize``
one-shots, ``submit``/``wait`` tickets, order-preserving
``run_batch`` — so every existing consumer (the batch CLI, the search
engine's :class:`~repro.search.space.ServiceEvaluator`, the fuzz and
chaos harnesses) can point at a remote server by swapping the client.

**Why retries are safe.**  Job identity *is* the cache key (a sha256
over version × kind × fingerprint × opts × options × payload), so
resubmitting after an ambiguous failure — the connection died after
the server may or may not have run the job — can never execute twice
for an observable difference: the retry either rides the in-flight
execution (single-flight coalescing) or hits the cache, byte-identical
either way.  That collapses the classic exactly-once problem into
at-least-once delivery plus idempotent submission.

Three failure families, three behaviours:

* **transport errors** (connect refused, timeouts, torn lines, EOF
  mid-read) → reconnect and resubmit, under
  :class:`RetryPolicy`'s capped, seeded-jitter exponential backoff;
* **retryable rejections** (``QueueFull``, ``ServerDraining``,
  ``ServiceClosed``, ``Backpressure``) → the server is explicitly
  saying "back off and try again", same policy, same counter;
* **terminal errors** (malformed job, unknown optimization, or any
  genuine job failure) → raised once as :class:`RequestError`, never
  retried — a poisoned request stays poisoned no matter how often
  it is resent.

When the budget runs out, :class:`ServiceUnavailable` reports every
attempt and delay so the operator sees the whole campaign, not just
the last socket error.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.genesis.driver import DriverOptions
from repro.ir.program import Program
from repro.service.job import Job, JobResult
from repro.service.net.protocol import (
    decode_line,
    encode_line,
    retryable_rejection,
)


class ServiceUnavailable(ConnectionError):
    """The retry budget is spent and the server is still unreachable."""


class RequestError(RuntimeError):
    """The server rejected the request terminally; retrying is useless."""

    def __init__(self, message: str, error_type: str = "RequestError"):
        super().__init__(message)
        self.error_type = error_type


@dataclass
class RetryPolicy:
    """Capped exponential backoff with seeded multiplicative jitter.

    ``delay(n) = min(max_delay, base_delay * multiplier**n)
    * (1 + jitter * rng())`` — monotone below the cap whenever
    ``jitter < multiplier - 1``, so seeded tests can assert both the
    attempt count and that successive delays never shrink.
    """

    attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: Optional[int] = None
    #: test hook: sleep replacement (defaults to ``time.sleep``)
    sleep: object = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return base * (1.0 + self.jitter * rng.random())


class RemoteStats(dict):
    """A remote service's counter tree; ``str()`` is its summary line."""

    summary_text: str = ""

    def __str__(self) -> str:
        import json

        return self.summary_text or json.dumps(self)


class NetworkServiceClient:
    """A blocking JSON-lines client with bounded, jittered retries."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connect_timeout: float = 2.0,
        request_timeout: Optional[float] = 120.0,
        retry: Optional[RetryPolicy] = None,
        log=None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retry = retry or RetryPolicy()
        self._rng = random.Random(self.retry.seed)
        self._log = log or (lambda message: None)
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        #: connection epoch: ticket job ids are only meaningful against
        #: the server process that issued them
        self._epoch = 0
        #: ticket -> (epoch, job_id-or-None, Job) for submit()/wait()
        self._tickets: dict[int, tuple[int, Optional[int], Job]] = {}
        self._next_ticket = 0
        self._hello: Optional[dict] = None
        # test hooks: total reconnect attempts and the delays slept
        self.attempts = 0
        self.delays: list[float] = []

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._epoch += 1
        self._hello = self._roundtrip({"cmd": "hello"})

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _send(self, message: dict) -> int:
        self._next_id += 1
        message = dict(message, id=self._next_id)
        assert self._sock is not None
        self._sock.sendall(encode_line(message))
        return self._next_id

    def _read_message(self) -> dict:
        """One complete line from the wire, or ``ConnectionError``.

        A line without its trailing newline means the server died (or
        chaos severed us) mid-write: the payload cannot be trusted, so
        it is a transport error, not a protocol error.
        """
        assert self._reader is not None
        try:
            line = self._reader.readline()
        except socket.timeout as error:
            raise ConnectionError("request timed out") from error
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            raise ConnectionError("connection severed mid-response")
        try:
            return decode_line(line)
        except ValueError as error:
            raise ConnectionError(f"garbled response: {error}") from error

    def _roundtrip(self, message: dict) -> dict:
        """Send one request and block for *its* response.

        Events (messages without an ``id``) and stale responses from a
        previous request on this connection are skipped; heartbeats
        while a job runs reset the read timeout, so a slow job is
        distinguishable from a dead server.
        """
        request_id = self._send(message)
        while True:
            response = self._read_message()
            if response.get("id") != request_id:
                continue  # event or superseded response
            if "error" in response:
                if response.get("retryable"):
                    raise ConnectionError(
                        f"{response.get('error_type')}: "
                        f"{response['error']}"
                    )
                raise RequestError(
                    str(response["error"]),
                    str(response.get("error_type", "RequestError")),
                )
            return response

    # ------------------------------------------------------------------
    # the retry loop
    # ------------------------------------------------------------------
    def request(self, message: dict) -> dict:
        """One request with reconnect-and-resubmit retries.

        Only idempotent requests may travel here (every protocol
        command is: submission is idempotent under cache keys, the
        rest are read-only).
        """
        errors: list[str] = []
        for attempt in range(self.retry.attempts):
            self.attempts += 1
            try:
                self._ensure_connected()
                return self._roundtrip(message)
            except RequestError:
                raise  # terminal: a poisoned request is never retried
            except (ConnectionError, OSError) as error:
                self._disconnect()
                errors.append(f"{type(error).__name__}: {error}")
                if attempt + 1 >= self.retry.attempts:
                    break
                pause = self.retry.delay(attempt, self._rng)
                self.delays.append(pause)
                self._log(
                    f"net: attempt {attempt + 1} failed ({error}); "
                    f"retrying in {pause:.3f}s"
                )
                sleep = self.retry.sleep or time.sleep
                sleep(pause)
        raise ServiceUnavailable(
            f"{self.host}:{self.port} unavailable after "
            f"{self.retry.attempts} attempt(s): " + " | ".join(errors)
        )

    def _optimize_job(self, job: Job) -> JobResult:
        """Submit-and-wait as one request, with rejection retries.

        Wire errors retry inside :meth:`request`; *resolved* retryable
        rejections (``QueueFull`` et al.) retry here, against the same
        bounded budget, because they arrive as normal results.
        """
        payload = {"cmd": "submit", "job": job.to_dict(), "wait": True}
        errors: list[str] = []
        for attempt in range(self.retry.attempts):
            response = self.request(payload)
            result = JobResult.from_dict(response["result"])
            if not retryable_rejection(result):
                return result
            errors.append(
                result.failure.error_type if result.failure else "rejected"
            )
            if attempt + 1 >= self.retry.attempts:
                break
            self.attempts += 1
            pause = self.retry.delay(attempt, self._rng)
            self.delays.append(pause)
            self._log(
                f"net: job rejected ({errors[-1]}); "
                f"retrying in {pause:.3f}s"
            )
            sleep = self.retry.sleep or time.sleep
            sleep(pause)
        raise ServiceUnavailable(
            f"job rejected after {self.retry.attempts} attempt(s): "
            + " | ".join(errors)
        )

    # ------------------------------------------------------------------
    # the ServiceClient surface
    # ------------------------------------------------------------------
    def optimize_source(
        self,
        source: str,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        timeout: Optional[float] = None,
    ) -> JobResult:
        job = Job.from_source(source, opt_names, options)
        return self._optimize_job(job)

    def optimize_program(
        self,
        program: Program,
        opt_names: Sequence[str],
        options: Optional[DriverOptions] = None,
        timeout: Optional[float] = None,
    ) -> JobResult:
        job = Job.from_program(program, opt_names, options)
        return self._optimize_job(job)

    def submit(self, job: Job) -> int:
        """Pipeline a job; returns a client-local ticket for ``wait``.

        The submission goes out eagerly (``wait: false``) so the
        server starts work immediately; the ticket remembers the job,
        so if the connection dies before ``wait`` collects the result,
        the job is simply resubmitted — idempotent under its cache key.
        """
        self._next_ticket += 1
        ticket = self._next_ticket
        try:
            self._ensure_connected()
            response = self._roundtrip(
                {"cmd": "submit", "job": job.to_dict(), "wait": False}
            )
            self._tickets[ticket] = (self._epoch, response["job_id"], job)
        except RequestError:
            self._tickets.pop(ticket, None)
            raise
        except (ConnectionError, OSError):
            # collect via full resubmission at wait() time
            self._disconnect()
            self._tickets[ticket] = (self._epoch, None, job)
        return ticket

    def wait(self, ticket: int, timeout: Optional[float] = None) -> JobResult:
        """Resolve a ticket from :meth:`submit`."""
        try:
            epoch, job_id, job = self._tickets.pop(ticket)
        except KeyError:
            raise RequestError(f"unknown ticket {ticket}") from None
        if job_id is not None and epoch == self._epoch and self._sock:
            try:
                response = self._roundtrip(
                    {"cmd": "wait", "job_id": job_id}
                )
                return JobResult.from_dict(response["result"])
            except (ConnectionError, OSError):
                self._disconnect()
        # connection (or server) changed since submit: resubmit —
        # coalesces or cache-hits if the first submission ran
        return self._optimize_job(job)

    def run_batch(
        self,
        jobs: Sequence[Job],
        timeout: Optional[float] = None,
    ) -> list[JobResult]:
        """Pipelined batch: results in submission order."""
        limit = max(1, self.queue_limit)
        results: list[JobResult] = []
        for start in range(0, len(jobs), limit):
            window = jobs[start : start + limit]
            tickets = [self.submit(job) for job in window]
            results.extend(self.wait(ticket) for ticket in tickets)
        return results

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"cmd": "ping"}).get("pong"))

    @property
    def stats(self) -> "RemoteStats":
        """The remote counter tree (a dict that prints as the remote
        service's one-line summary, mirroring ``ServiceClient.stats``)."""
        response = self.request({"cmd": "stats"})
        stats = RemoteStats(response["stats"])
        stats.summary_text = str(response.get("summary", ""))
        return stats

    def hello(self) -> dict:
        if self._hello is None:
            self._ensure_connected()
        assert self._hello is not None
        return self._hello

    def shutdown_server(self) -> None:
        """Ask the server to drain and exit (acked before it does)."""
        self.request({"cmd": "shutdown"})

    @property
    def queue_limit(self) -> int:
        """The remote admission-queue limit (batch windowing), bounded
        by the per-connection pending cap."""
        try:
            hello = self.hello()
        except (ConnectionError, OSError):
            return 64
        return min(
            int(hello.get("queue_limit", 256)),
            int(hello.get("max_pending", 64)),
        )

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "NetworkServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
