"""The JSON-lines wire dialect of the optimization service.

One JSON object per ``\\n``-terminated line, in both directions.

**Requests** (client → server) carry a client-chosen ``id`` echoed on
the response, and a ``cmd``:

========  ============================================================
cmd       payload
========  ============================================================
hello     — → server identity, version, ``queue_limit``,
          ``max_pending`` (per-connection), backend, draining flag
ping      — → ``{"pong": true}`` (liveness/heartbeat probe)
stats     — → the service's full counter tree
submit    ``job`` (a :meth:`~repro.service.job.Job.to_dict` object) or
          the legacy ``source``/``workload`` + ``opts`` + ``options``
          keys; ``wait`` (default true) resolves the response with the
          final result, else it returns ``job_id`` immediately;
          ``events`` streams status transitions for the job
wait      ``job_id`` from an earlier non-waiting submit on the *same*
          connection's server process
shutdown  — → ack, then the server drains and exits 0
========  ============================================================

**Responses** echo ``id`` and carry either a payload or an error
envelope ``{"error", "error_type", "retryable"}``.  ``retryable`` is
the server telling the client whether backing off and resubmitting can
succeed (``Backpressure``, ``ServerDraining``) or is pointless (a
malformed job).  Job-level rejections travel inside a normal
``result`` payload — see ``RETRYABLE_REJECTIONS``.

**Events** (server → client, no ``id``): ``{"event": "job", "job_id",
"status"}`` transitions for subscribed jobs, ``{"event": "heartbeat"}``
keep-alives while a wait is outstanding, and ``{"event": "shutdown"}``
as the server drains.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.genesis.driver import DriverOptions
from repro.service.job import Job, JobError, JobResult, options_from_dict

#: A line longer than this is a protocol violation (64 MiB of program
#: text is far beyond the million-quad roadmap sizes).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: ``failure.error_type`` values on a resolved result that a client may
#: safely retry after backoff: the job never ran (full queue, draining
#: or closing server), and resubmission is idempotent under cache keys.
RETRYABLE_REJECTIONS = frozenset(
    {"QueueFull", "ServiceClosed", "ServerDraining"}
)


class ProtocolError(ValueError):
    """A message that violates the wire dialect."""


def encode_line(payload: dict) -> bytes:
    """One message as a ``\\n``-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> dict:
    """Parse one received line into a message object."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"bad JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def error_message(
    request_id: Optional[int],
    error: str,
    error_type: str = "ProtocolError",
    retryable: bool = False,
) -> dict:
    envelope: dict[str, object] = {
        "error": error,
        "error_type": error_type,
        "retryable": retryable,
    }
    if request_id is not None:
        envelope["id"] = request_id
    return envelope


def retryable_rejection(result: JobResult) -> bool:
    """A resolved result the client should back off and resubmit.

    Resubmission is safe because job identity *is* the cache key: if
    the first submission actually ran, the retry is a cache hit or a
    single-flight ride, never a second execution.
    """
    if result.ok or result.failure is None:
        return False
    return result.failure.error_type in RETRYABLE_REJECTIONS


def job_from_request(request: dict, workloads: Optional[dict] = None) -> Job:
    """Build the :class:`Job` a submit request describes.

    Two spellings: a full ``{"job": {...Job.to_dict()...}}`` object
    (what :class:`~repro.service.net.client.NetworkServiceClient`
    sends — the fingerprint travels with it, so the server does not
    re-parse), or the legacy ``source``/``workload`` + ``opts`` +
    ``options`` + ``deadline`` keys the stdio loop has always spoken
    (parsed eagerly, so a malformed program is rejected at admission).
    """
    if "job" in request:
        payload = request["job"]
        if not isinstance(payload, dict):
            raise JobError("'job' must be an object")
        return Job.from_dict(payload)
    if workloads is None:
        from repro.workloads.programs import SOURCES as workloads  # noqa: F811
    if "workload" in request:
        name = str(request["workload"])
        if name not in workloads:
            raise JobError(
                f"unknown workload {name!r}; known: "
                f"{', '.join(workloads)}"
            )
        source = workloads[name]
    elif "source" in request:
        source = str(request["source"])
    else:
        raise JobError(
            "request needs a 'job' object, or a 'source' or "
            "'workload' key"
        )
    opts = request.get("opts", "CTP,CFO,DCE")
    if isinstance(opts, str):
        opt_names = tuple(
            name.strip().upper() for name in opts.split(",")
        )
    else:
        opt_names = tuple(str(name).upper() for name in opts)
    from repro.opts.extended import EXTENDED_SPECS
    from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS

    unknown = [
        name for name in opt_names
        if name not in STANDARD_SPECS
        and name not in EXTENDED_SPECS
        and name not in VARIANT_SPECS
    ]
    if unknown:
        raise JobError(f"unknown optimization(s): {', '.join(unknown)}")
    options = DriverOptions(apply_all=True)
    if "options" in request:
        options = options_from_dict(dict(request["options"]))
    return Job.from_source(
        source, opt_names, options,
        deadline_seconds=request.get("deadline"),
    )
