"""The asyncio TCP server in front of the optimization scheduler.

:class:`OptimizationServer` owns one
:class:`~repro.service.scheduler.OptimizationService` and serves the
JSON-lines dialect of :mod:`repro.service.net.protocol` to any number
of concurrent TCP clients.  The scheduler stays the synchronous,
explicitly-pumped machine it always was — a single asyncio *pump task*
drives it, so every scheduling decision still happens in one thread in
a deterministic order; the event loop only multiplexes I/O.

Per connection:

* a **reader task** parses request lines and dispatches them;
* a **writer task** drains an outbox queue, so responses and events
  from the pump task never interleave mid-line and a slow reader
  exerts backpressure on its own connection only;
* at most ``max_pending`` unresolved waits may be outstanding — a
  submit beyond that is refused with a retryable ``Backpressure``
  error instead of letting one client queue unbounded state;
* ``heartbeat`` events flow while a wait is outstanding, so clients
  with read timeouts can tell a slow job from a dead server.

**Graceful drain** (SIGTERM, SIGINT, or a ``shutdown`` command): the
listener closes (no new connections), new submissions are refused with
retryable ``ServerDraining``, in-flight jobs get ``drain_grace``
seconds to land (their waiters are answered normally), whatever
remains is cleanly failed as ``ServiceClosed`` — which clients also
treat as retry-after-restart — the persistent cache tier is already
durable (every store was an atomic rename), and the process exits 0.

``kill -9`` needs no handler at all: the disk tier's atomic writes
mean an abrupt death can strand at most a temp file, never a corrupt
entry — the network chaos campaign (`repro.verify.netchaos`) proves
exactly that.

The test-only ``chaos_disconnect`` knob severs a connection after
writing *half* of a response line (seeded), exercising the client's
mid-read reconnect path.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import sys
import time
from dataclasses import dataclass
from typing import Optional

from repro._version import __version__
from repro.service.job import JobError
from repro.service.net.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    error_message,
    job_from_request,
)
from repro.service.scheduler import (
    OptimizationService,
    ServiceConfig,
    ServiceError,
)


@dataclass
class ServeConfig:
    """Network-server knobs (scheduler knobs ride in ServiceConfig)."""

    host: str = "127.0.0.1"
    #: 0 picks a free port; the bound port lands in ``port_file``
    port: int = 0
    backend: str = "process"
    max_workers: int = 4
    queue_limit: int = 256
    cache_capacity: int = 256
    cache_dir: Optional[str] = None
    cache_disk_bytes: int = 64 * 1024 * 1024
    default_deadline: Optional[float] = None
    #: unresolved waits one connection may hold before ``Backpressure``
    max_pending: int = 64
    #: scheduler pump cadence (also the event-delivery cadence)
    pump_interval: float = 0.005
    #: keep-alive cadence towards connections with outstanding waits
    heartbeat_interval: float = 2.0
    #: seconds in-flight jobs get to land during a drain
    drain_grace: float = 10.0
    #: written atomically once bound (how tests learn a port-0 choice)
    port_file: Optional[str] = None
    #: test-only: sever a connection after half a response at this rate
    chaos_disconnect: float = 0.0
    chaos_seed: int = 0


class _Connection:
    """One client session: its writer task, waiters, and subscriptions."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.conn_id = next(self._ids)
        self.outbox: asyncio.Queue = asyncio.Queue()
        #: (request id, job id) pairs awaiting results
        self.waiters: list[tuple[Optional[int], int]] = []
        #: job id -> last status sent as a job event
        self.subscriptions: dict[int, Optional[str]] = {}
        self.alive = True
        self.last_write = time.monotonic()
        self.writer_task: Optional[asyncio.Task] = None

    def send(self, payload: dict, truncate: bool = False) -> None:
        """Enqueue one message (the writer task serializes the wire)."""
        if not self.alive:
            return
        self.last_write = time.monotonic()
        self.outbox.put_nowait((encode_line(payload), truncate))

    def close(self) -> None:
        self.alive = False
        self.outbox.put_nowait(None)


class OptimizationServer:
    """Serve one :class:`OptimizationService` over TCP JSON lines."""

    def __init__(self, config: Optional[ServeConfig] = None, log=None):
        self.config = config or ServeConfig()
        self._log_sink = log if log is not None else (
            lambda message: print(message, file=sys.stderr, flush=True)
        )
        self.service = OptimizationService(
            ServiceConfig(
                backend=self.config.backend,
                max_workers=self.config.max_workers,
                queue_limit=self.config.queue_limit,
                cache_capacity=self.config.cache_capacity,
                cache_dir=self.config.cache_dir,
                cache_disk_bytes=self.config.cache_disk_bytes,
                default_deadline=self.config.default_deadline,
            ),
            log=self._log_sink,
        )
        self.port: Optional[int] = None
        self._conns: set[_Connection] = set()
        self._draining = False
        self._drain_event: Optional[asyncio.Event] = None
        self._rng = (
            random.Random(self.config.chaos_seed)
            if self.config.chaos_disconnect > 0
            else None
        )
        self.chaos_disconnects = 0

    def _log(self, message: str) -> None:
        self._log_sink(f"serve: {message}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Blocking entry point: serve until drained; exit status 0."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:  # pragma: no cover - signal fallback
            pass
        return 0

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._drain_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: shutdown command still works
        server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._write_port_file()
        self._log(
            f"listening on {self.config.host}:{self.port} "
            f"(backend={self.config.backend}, "
            f"workers={self.config.max_workers}, "
            f"cache_dir={self.config.cache_dir or '<memory only>'})"
        )
        pump = asyncio.create_task(self._pump_loop())
        try:
            async with server:
                await self._drain_event.wait()
                await self._drain(server)
        finally:
            pump.cancel()

    def _write_port_file(self) -> None:
        """Publish the bound port atomically (the test/CLI handshake)."""
        if not self.config.port_file:
            return
        path = self.config.port_file
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(f"{self.port}\n")
        os.replace(tmp, path)

    async def _drain(self, server: asyncio.AbstractServer) -> None:
        """SIGTERM semantics: stop admission, land or cleanly reject
        in-flight work, flush state, exit 0."""
        self._draining = True
        self._log("draining: admission stopped")
        server.close()
        await server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace
        while self.service.pending and loop.time() < deadline:
            # the pump task is still running: jobs land, waiters resolve
            await asyncio.sleep(self.config.pump_interval)
        # whatever is still in flight fails structurally (ServiceClosed,
        # which clients treat as retry-after-restart); completed results
        # are already durable in the disk tier (atomic renames)
        self.service.close()
        self._deliver()
        for conn in list(self._conns):
            conn.send({"event": "shutdown"})
            conn.close()
        await asyncio.sleep(0)  # let writer tasks flush their outboxes
        for conn in list(self._conns):
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, timeout=1.0)
                except (asyncio.TimeoutError, Exception):
                    pass
        self._log(f"drained: {self.service.stats.summary()}")

    # ------------------------------------------------------------------
    # per-connection tasks
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        conn.writer_task = asyncio.create_task(self._writer_loop(conn))
        try:
            while conn.alive:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError, OSError):
                    break  # oversized line or torn connection
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                except ValueError as error:
                    conn.send(error_message(None, str(error)))
                    continue
                self._dispatch(conn, message)
        finally:
            self._conns.discard(conn)
            conn.close()

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                item = await conn.outbox.get()
                if item is None:
                    break
                data, truncate = item
                if truncate:
                    # chaos: half a response, then a hard abort — the
                    # client must treat the torn line as a dead server
                    conn.writer.write(data[: max(1, len(data) // 2)])
                    await conn.writer.drain()
                    conn.writer.transport.abort()
                    break
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, OSError):  # client went away mid-write
            pass
        finally:
            conn.alive = False
            try:
                conn.writer.close()
            except Exception:  # pragma: no cover - transport gone
                pass

    # ------------------------------------------------------------------
    # request dispatch (synchronous; runs on the event loop)
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, message: dict) -> None:
        request_id = message.get("id")
        command = message.get("cmd", "submit")
        try:
            if command == "hello":
                conn.send({
                    "id": request_id,
                    "ok": True,
                    "server": "genesis-serve",
                    "version": __version__,
                    "queue_limit": self.service.config.queue_limit,
                    "max_pending": self.config.max_pending,
                    "backend": self.service.backend.name,
                    "workers": self.service.backend.max_workers,
                    "draining": self._draining,
                })
            elif command == "ping":
                conn.send({"id": request_id, "pong": True,
                           "t": time.time()})
            elif command == "stats":
                conn.send({
                    "id": request_id,
                    "stats": self.service.stats.as_dict(),
                    "summary": self.service.stats.summary(),
                })
            elif command == "shutdown":
                conn.send({"id": request_id, "ok": True,
                           "draining": True})
                assert self._drain_event is not None
                self._drain_event.set()
            elif command == "wait":
                job_id = int(message["job_id"])
                self.service.status(job_id)  # raises on unknown ids
                conn.waiters.append((request_id, job_id))
                self._deliver_conn(conn)
            elif command == "submit":
                self._submit(conn, request_id, message)
            else:
                conn.send(error_message(
                    request_id, f"unknown command {command!r}",
                    "ProtocolError",
                ))
        except (JobError, ServiceError, KeyError, TypeError,
                ValueError) as error:
            conn.send(error_message(
                request_id,
                str(error) or type(error).__name__,
                type(error).__name__,
            ))

    def _submit(
        self, conn: _Connection, request_id: Optional[int], message: dict
    ) -> None:
        if self._draining:
            conn.send(error_message(
                request_id,
                "server is draining and admits no new jobs",
                "ServerDraining",
                retryable=True,
            ))
            return
        if len(conn.waiters) >= self.config.max_pending:
            conn.send(error_message(
                request_id,
                f"connection holds {len(conn.waiters)} unresolved "
                f"wait(s) (limit {self.config.max_pending})",
                "Backpressure",
                retryable=True,
            ))
            return
        job = job_from_request(message)
        job_id = self.service.submit(job)
        if message.get("events"):
            conn.subscriptions[job_id] = None
        if message.get("wait", True):
            conn.waiters.append((request_id, job_id))
        else:
            conn.send({
                "id": request_id,
                "job_id": job_id,
                "status": self.service.status(job_id),
            })
        self._deliver_conn(conn)

    # ------------------------------------------------------------------
    # the pump task: scheduling + event/response delivery
    # ------------------------------------------------------------------
    async def _pump_loop(self) -> None:
        while True:
            try:
                self.service.pump()
            except ServiceError:  # service closed mid-drain
                pass
            self._deliver()
            await asyncio.sleep(self.config.pump_interval)

    def _deliver(self) -> None:
        for conn in list(self._conns):
            if conn.alive:
                self._deliver_conn(conn)

    def _deliver_conn(self, conn: _Connection) -> None:
        # job-status events for subscribed jobs
        finished: list[int] = []
        for job_id, last_status in conn.subscriptions.items():
            status = self.service.status(job_id)
            if status != last_status:
                conn.subscriptions[job_id] = status
                conn.send({
                    "event": "job", "job_id": job_id, "status": status,
                })
            if self.service.result(job_id) is not None:
                finished.append(job_id)
        for job_id in finished:
            del conn.subscriptions[job_id]
        # resolved waiters become responses
        still_waiting: list[tuple[Optional[int], int]] = []
        for request_id, job_id in conn.waiters:
            result = self.service.result(job_id)
            if result is None:
                still_waiting.append((request_id, job_id))
                continue
            truncate = (
                self._rng is not None
                and self._rng.random() < self.config.chaos_disconnect
            )
            if truncate:
                self.chaos_disconnects += 1
                self._log(
                    f"chaos: severing connection {conn.conn_id} "
                    f"mid-response (job {job_id})"
                )
            conn.send(
                {"id": request_id, "result": result.to_dict()},
                truncate=truncate,
            )
            if truncate:
                # the connection is gone; drop its remaining waiters —
                # the client will reconnect and resubmit (idempotent)
                return
        conn.waiters = still_waiting
        # keep-alive towards connections with outstanding waits
        if conn.waiters and (
            time.monotonic() - conn.last_write
            > self.config.heartbeat_interval
        ):
            conn.send({"event": "heartbeat", "t": time.time()})


def _parse_hostport(text: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``HOST:PORT``, ``:PORT`` or ``PORT`` → (host, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = default_host, text
    host = host or default_host
    try:
        return host, int(port)
    except ValueError as error:
        raise ServiceError(
            f"bad address {text!r} (expected HOST:PORT or PORT)"
        ) from error


def run_server(config: ServeConfig, log=None) -> int:
    """Build and run one server (the ``genesis serve --listen`` path)."""
    return OptimizationServer(config, log=log).run()
