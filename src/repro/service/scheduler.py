"""The optimization service: queue, admission control, dispatch, reap.

:class:`OptimizationService` is a synchronous, explicitly-pumped
scheduler (no background threads — determinism is a feature, and the
process-pool backend supplies the actual parallelism):

* **bounded queue + admission control** — at most ``queue_limit`` jobs
  may wait; a submission beyond that is *rejected* with a structured
  failure instead of growing memory without bound.  Malformed programs
  are rejected at admission (the job constructor parses eagerly), and a
  fingerprint whose jobs have repeatedly killed workers is quarantined
  by a :class:`~repro.genesis.transaction.HealthLedger` — the same
  circuit breaker the pipeline uses for misbehaving optimizers.

* **fingerprint-keyed result cache** — identical requests (canonical
  program content hash × optimization sequence × options × version)
  are served from the :class:`~repro.service.cache.ResultCache`
  without re-optimizing.

* **single-flight coalescing** — a request identical to one already
  queued or running does not run twice: it attaches to the in-flight
  job and receives the same result when it lands.

* **per-job deadlines + worker reaping** — every pump checks running
  jobs against their wall-clock budget; an overrunning or stalled
  worker is killed and the job reported failed, a crashed worker
  (died without a result) likewise.  Queued jobs whose deadline passes
  before dispatch expire without ever occupying a worker.

The service is driven by :meth:`pump` (one non-blocking scheduling
step); :meth:`wait` and :meth:`drain` pump until completion.  See
``docs/service.md`` for the architecture picture.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro._version import __version__
from repro.genesis.transaction import HealthLedger
from repro.service.backends import (
    InProcessBackend,
    ProcessPoolBackend,
    WorkerHandle,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.diskcache import DiskCache
from repro.service.job import (
    COMPLETED,
    EXPIRED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    Job,
    JobResult,
    job_failure,
)


class ServiceError(RuntimeError):
    """Misuse of the service API (unknown job id, closed service)."""


@dataclass
class ServiceConfig:
    """Service-level knobs (driver knobs travel inside each job)."""

    #: worker backend: ``"inprocess"`` or ``"process"``
    backend: str = "inprocess"
    #: concurrent workers (the process pool's width; the in-process
    #: backend is inherently serial but honours the dispatch order)
    max_workers: int = 2
    #: bounded-queue admission limit (waiting jobs, running excluded)
    queue_limit: int = 256
    #: result-cache capacity in entries (0 disables the memory tier)
    cache_capacity: int = 256
    #: directory for the persistent disk cache tier (None: memory only);
    #: shareable across restarts and across a fleet of serve processes
    cache_dir: Optional[str] = None
    #: size cap for the disk tier before oldest-first GC
    cache_disk_bytes: int = 64 * 1024 * 1024
    #: default service-level wall-clock budget per job (None: no limit)
    default_deadline: Optional[float] = None
    #: worker crashes/stalls per fingerprint before it is quarantined
    crash_quarantine: int = 3
    #: sleep between pumps while blocking in wait()/drain()
    poll_interval: float = 0.005


@dataclass
class ServiceStats:
    """Aggregate service counters (cache counters ride along)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    expired: int = 0
    #: submissions coalesced onto an identical in-flight job
    coalesced: int = 0
    #: submissions served straight from the result cache
    cache_served: int = 0
    #: workers killed for deadline overrun or stall
    reaped: int = 0
    #: workers that died without producing a result
    crashes: int = 0
    max_queue_depth: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: persistent-tier counters (None when no cache_dir is configured)
    disk: Optional[object] = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "expired": self.expired,
            "coalesced": self.coalesced,
            "cache_served": self.cache_served,
            "reaped": self.reaped,
            "crashes": self.crashes,
            "max_queue_depth": self.max_queue_depth,
            "cache": self.cache.as_dict(),
        }
        if self.disk is not None:
            payload["disk"] = self.disk.as_dict()
        return payload

    def summary(self) -> str:
        text = (
            f"service: {self.submitted} submitted, {self.completed} "
            f"completed, {self.failed} failed, {self.rejected} rejected, "
            f"{self.expired} expired, {self.coalesced} coalesced, "
            f"{self.cache_served} cache-served, {self.crashes} crash(es), "
            f"{self.reaped} reaped; {self.cache}"
        )
        if self.disk is not None:
            text += f"; {self.disk}"
        return text


@dataclass
class _JobRecord:
    """Internal bookkeeping for one submitted job."""

    job_id: int
    job: Job
    key: str
    status: str = QUEUED
    result: Optional[JobResult] = None
    #: job ids coalesced onto this record (single-flight followers)
    followers: list[int] = field(default_factory=list)
    handle: Optional[WorkerHandle] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    deadline: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status in (COMPLETED, FAILED, REJECTED, EXPIRED)


class OptimizationService:
    """The optimization-as-a-service execution layer."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        backend=None,
        log=None,
    ):
        self.config = config or ServiceConfig()
        if backend is not None:
            self.backend = backend
        elif self.config.backend == "process":
            self.backend = ProcessPoolBackend(self.config.max_workers)
        elif self.config.backend == "inprocess":
            self.backend = InProcessBackend(self.config.max_workers)
        else:
            raise ServiceError(
                f"unknown backend {self.config.backend!r} "
                "(expected 'inprocess' or 'process')"
            )
        disk = (
            DiskCache(self.config.cache_dir, self.config.cache_disk_bytes)
            if self.config.cache_dir
            else None
        )
        self.cache = ResultCache(self.config.cache_capacity, disk=disk)
        #: crash-looping fingerprints trip the same circuit breaker
        #: that quarantines misbehaving optimizers in a pipeline
        self.health = HealthLedger(
            quarantine_after=max(1, self.config.crash_quarantine)
        )
        self.stats = ServiceStats(
            cache=self.cache.stats,
            disk=disk.stats if disk is not None else None,
        )
        self._records: dict[int, _JobRecord] = {}
        self._queue: deque[int] = deque()
        self._running: list[_JobRecord] = []
        #: cache-key -> leading in-flight record (single-flight)
        self._inflight: dict[str, int] = {}
        self._next_id = 1
        self._closed = False
        self._log = log
        if self._log is not None:
            self._log(
                f"optimization service v{__version__}: "
                f"backend={self.backend.name} "
                f"workers={self.backend.max_workers} "
                f"queue_limit={self.config.queue_limit} "
                f"cache={self.config.cache_capacity}"
            )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> int:
        """Admit one job; returns its job id immediately.

        Rejections (full queue, quarantined fingerprint) resolve the
        job *immediately* with a structured ``rejected`` result — the
        caller always gets an id it can :meth:`wait` on.

        A submission identical to an in-flight job coalesces onto it
        (single-flight): the follower receives a copy of the leader's
        result, carrying the leader's timing and worker fields.  The
        follower keeps its *own* wall-clock deadline, though — if that
        passes before the leader lands, the follower expires
        individually while the leader runs on unaffected.
        """
        if self._closed:
            raise ServiceError("service is closed")
        job_id = self._next_id
        self._next_id += 1
        record = _JobRecord(
            job_id=job_id,
            job=job,
            key=job.cache_key(),
            submitted_at=time.perf_counter(),
        )
        deadline = (
            job.deadline_seconds
            if job.deadline_seconds is not None
            else self.config.default_deadline
        )
        if deadline is not None:
            record.deadline = record.submitted_at + deadline
        self._records[job_id] = record
        self.stats.submitted += 1

        cached = self.cache.get(record.key)
        if cached is not None:
            self.stats.cache_served += 1
            self._resolve(record, self._stamp(cached, record))
            return job_id
        if self.health.is_quarantined(record.key):
            self.stats.rejected += 1
            self._resolve(
                record,
                self._rejection(
                    record,
                    "FingerprintQuarantined",
                    "this request has repeatedly crashed or stalled "
                    "workers and is quarantined "
                    f"(after {self.health.quarantine_after} strikes)",
                ),
            )
            return job_id
        leader_id = self._inflight.get(record.key)
        if leader_id is not None and not self._records[leader_id].done:
            # single-flight: ride the identical in-flight job
            self._records[leader_id].followers.append(job_id)
            self.stats.coalesced += 1
            return job_id
        if len(self._queue) >= self.config.queue_limit:
            self.stats.rejected += 1
            self._resolve(
                record,
                self._rejection(
                    record,
                    "QueueFull",
                    f"admission queue is at its limit "
                    f"({self.config.queue_limit} waiting job(s))",
                ),
            )
            return job_id
        self._inflight[record.key] = job_id
        self._queue.append(job_id)
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )
        self.pump()
        return job_id

    # ------------------------------------------------------------------
    # the scheduling pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """One non-blocking scheduling step: collect, reap, dispatch."""
        now = time.perf_counter()
        self._expire_followers(now)
        self._collect(now)
        self._dispatch(now)

    def _expire_followers(self, now: float) -> None:
        """Enforce coalesced followers' own wall-clock budgets.

        A follower rides its leader's execution but keeps its own
        deadline: when that passes before the leader lands, the
        follower expires individually (the leader and any other
        followers are unaffected).
        """
        for record in self._leaders_with_followers():
            keep: list[int] = []
            for follower_id in record.followers:
                follower = self._records[follower_id]
                if (
                    follower.deadline is not None
                    and now > follower.deadline
                ):
                    self.stats.expired += 1
                    follower.status = EXPIRED
                    follower.result = self._follower_expiry(follower)
                else:
                    keep.append(follower_id)
            record.followers = keep

    def _leaders_with_followers(self) -> Iterator[_JobRecord]:
        for record in self._running:
            if record.followers:
                yield record
        for job_id in self._queue:
            record = self._records[job_id]
            if record.followers:
                yield record

    def _follower_expiry(self, follower: _JobRecord) -> JobResult:
        return JobResult(
            job_id=follower.job_id,
            status=EXPIRED,
            fingerprint=follower.job.fingerprint,
            cache_key=follower.key,
            coalesced=True,
            failure=job_failure(
                "queue",
                "JobExpired",
                "deadline passed while coalesced on an in-flight job "
                f"({self._budget_text(follower)})",
            ),
        )

    def _collect(self, now: float) -> None:
        still_running: list[_JobRecord] = []
        for record in self._running:
            assert record.handle is not None
            result = record.handle.poll()
            if result is not None:
                self._land(record, result)
                continue
            if record.deadline is not None and now > record.deadline:
                record.handle.kill()
                self.stats.reaped += 1
                self.stats.failed += 1
                self.health.record_rollback(
                    record.key,
                    failure := job_failure(
                        "worker",
                        "JobDeadlineExceeded",
                        f"job exceeded its {self._budget_text(record)} "
                        "wall-clock budget and its worker "
                        f"({record.handle.worker}) was reaped",
                    ),
                )
                self._resolve(
                    record,
                    JobResult(
                        job_id=record.job_id,
                        status=FAILED,
                        fingerprint=record.job.fingerprint,
                        cache_key=record.key,
                        failure=failure,
                        worker=record.handle.worker,
                    ),
                )
                continue
            if record.handle.crashed:
                self.stats.crashes += 1
                self.stats.failed += 1
                exitcode = record.handle.exitcode
                self.health.record_rollback(
                    record.key,
                    failure := job_failure(
                        "worker",
                        "WorkerCrashed",
                        f"worker {record.handle.worker} died without a "
                        f"result (exit code {exitcode})",
                    ),
                )
                self._resolve(
                    record,
                    JobResult(
                        job_id=record.job_id,
                        status=FAILED,
                        fingerprint=record.job.fingerprint,
                        cache_key=record.key,
                        failure=failure,
                        worker=record.handle.worker,
                    ),
                )
                continue
            still_running.append(record)
        self._running = still_running

    def _dispatch(self, now: float) -> None:
        while (
            self._queue
            and len(self._running) < self.backend.max_workers
        ):
            record = self._records[self._queue.popleft()]
            if record.done:  # pragma: no cover - defensive
                continue
            if record.deadline is not None and now > record.deadline:
                self.stats.expired += 1
                self._resolve(
                    record,
                    JobResult(
                        job_id=record.job_id,
                        status=EXPIRED,
                        fingerprint=record.job.fingerprint,
                        cache_key=record.key,
                        failure=job_failure(
                            "queue",
                            "JobExpired",
                            "deadline passed while queued "
                            f"({self._budget_text(record)})",
                        ),
                    ),
                )
                continue
            record.status = RUNNING
            record.started_at = now
            record.handle = self.backend.spawn(record.job)
            self._running.append(record)
            # a synchronous backend may already have the result
            result = record.handle.poll()
            if result is not None:
                self._running.remove(record)
                self._land(record, result)

    def _land(self, record: _JobRecord, result: JobResult) -> None:
        """A worker produced a result: account, cache, fan out."""
        if result.status == COMPLETED:
            self.stats.completed += 1
            self.health.record_success(record.key)
            self.cache.put(record.key, result)
        else:
            self.stats.failed += 1
            self.health.record_rollback(
                record.key,
                result.failure
                or job_failure("worker", "JobFailed", "worker reported "
                               "failure"),
            )
        self._resolve(record, self._stamp(result, record))

    def _stamp(self, result: JobResult, record: _JobRecord) -> JobResult:
        result.job_id = record.job_id
        result.fingerprint = record.job.fingerprint
        result.cache_key = record.key
        if record.started_at is not None:
            result.queued_seconds = record.started_at - record.submitted_at
        if record.handle is not None:
            result.worker = record.handle.worker or result.worker
        return result

    def _resolve(self, record: _JobRecord, result: JobResult) -> None:
        record.status = result.status
        record.result = result
        if self._inflight.get(record.key) == record.job_id:
            del self._inflight[record.key]
        now = time.perf_counter()
        for follower_id in record.followers:
            follower = self._records[follower_id]
            if follower.deadline is not None and now > follower.deadline:
                # the leader landed after this follower's own budget:
                # honour the follower's deadline, not the leader's
                follower_result = self._follower_expiry(follower)
            else:
                follower_result = replace(
                    result, job_id=follower_id, coalesced=True
                )
            follower.status = follower_result.status
            follower.result = follower_result
            if follower_result.status == COMPLETED:
                self.stats.completed += 1
            elif follower_result.status == EXPIRED:
                self.stats.expired += 1
            elif follower_result.status == FAILED:
                self.stats.failed += 1
        record.followers = []

    def _rejection(
        self, record: _JobRecord, error_type: str, message: str
    ) -> JobResult:
        return JobResult(
            job_id=record.job_id,
            status=REJECTED,
            fingerprint=record.job.fingerprint,
            cache_key=record.key,
            failure=job_failure("admission", error_type, message),
        )

    @staticmethod
    def _budget_text(record: _JobRecord) -> str:
        if record.deadline is None:  # pragma: no cover - guarded by caller
            return "unbounded"
        return f"{record.deadline - record.submitted_at:.3g}s"

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------
    def result(self, job_id: int) -> Optional[JobResult]:
        """The job's result if it has one (non-blocking)."""
        record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id}")
        return record.result

    def status(self, job_id: int) -> str:
        """The job's lifecycle state (the network server streams its
        transitions as job events)."""
        record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id}")
        return record.status

    def wait(self, job_id: int, timeout: Optional[float] = None) -> JobResult:
        """Pump until the job resolves; returns its result."""
        record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id}")
        give_up = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while record.result is None:
            self.pump()
            if record.result is not None:
                break
            if give_up is not None and time.perf_counter() > give_up:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(status {record.status})"
                )
            time.sleep(self.config.poll_interval)
        return record.result

    def drain(self, timeout: Optional[float] = None) -> list[JobResult]:
        """Pump until every submitted job resolves; all results by id."""
        give_up = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while any(r.result is None for r in self._records.values()):
            self.pump()
            if all(r.result is not None for r in self._records.values()):
                break
            if give_up is not None and time.perf_counter() > give_up:
                raise ServiceError("timed out draining the service")
            time.sleep(self.config.poll_interval)
        return [
            record.result
            for _job_id, record in sorted(self._records.items())
            if record.result is not None
        ]

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet resolved."""
        return sum(1 for r in self._records.values() if r.result is None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Reap all workers, fail unfinished jobs, refuse new work."""
        if self._closed:
            return
        self._closed = True
        for record in self._running:
            if record.handle is not None:
                record.handle.kill()
                self.stats.reaped += 1
        for record in self._records.values():
            if record.result is None:
                self.stats.failed += 1
                self._resolve(
                    record,
                    JobResult(
                        job_id=record.job_id,
                        status=FAILED,
                        fingerprint=record.job.fingerprint,
                        cache_key=record.key,
                        failure=job_failure(
                            "shutdown", "ServiceClosed",
                            "service closed before the job finished",
                        ),
                    ),
                )
        self._running = []
        self._queue.clear()
        self.backend.close()

    def __enter__(self) -> "OptimizationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
