"""Spec inference: growing the GOSpeL catalog beyond the paper's ten.

The paper's premise is that optimizations are *data* — TYPE / PRECOND /
ACTION specifications fed to GENesis.  This package supplies the
generator side of that premise: it **mines** candidate rewrites from
before/after program pairs (driver traces, the fuzz corpus's seeded
program stream, and a seeded pair generator), **generalizes** each
mined rewrite through a template-based abstraction ladder over the quad
IR, and **admits** a candidate only after an admission pipeline
certifies it — GOSpeL sema, dependence-legality under the transactional
driver, the differential oracle on randomized environments, and a
shadow run through the shared discrimination network.  Rejected
candidates are shrunk into replayable counterexample files; admitted
candidates are unparsed to GOSpeL source and become ordinary catalog
citizens (``repro.opts.inferred``).

See ``docs/inference.md`` for the full tour, and ``genesis infer`` /
the session ``infer`` command for the entry points.
"""

from repro.synth.admit import (
    AdmissionPipeline,
    AdmissionReport,
    GateResult,
)
from repro.synth.generalize import Candidate, GeneralizeError, ladder
from repro.synth.infer import (
    AdmittedSpec,
    InferenceConfig,
    InferenceResult,
    emit_module,
    run_inference,
)
from repro.synth.mine import (
    PLANT_TEMPLATES,
    PairGenerator,
    RewritePair,
    RewriteWindow,
    diff_pair,
    mine_fuzz_corpus,
    mine_pairs,
    mine_traces,
)

__all__ = [
    "AdmissionPipeline",
    "AdmissionReport",
    "AdmittedSpec",
    "Candidate",
    "GateResult",
    "GeneralizeError",
    "InferenceConfig",
    "InferenceResult",
    "PLANT_TEMPLATES",
    "PairGenerator",
    "RewritePair",
    "RewriteWindow",
    "diff_pair",
    "emit_module",
    "ladder",
    "mine_fuzz_corpus",
    "mine_pairs",
    "mine_traces",
    "run_inference",
]
