"""The admission pipeline: certify a candidate or shrink a refutation.

A candidate specification enters the catalog only after clearing, in
order:

1. **sema/codegen** — the GOSpeL front half.  The candidate's source
   must parse, pass semantic analysis, and compile to a Python
   optimizer through :func:`repro.genesis.generator.generate_optimizer`,
   exactly as a hand-written catalog spec would.
2. **legality** — the compiled optimizer runs over the admission
   corpus under the transactional driver with ``validate=True`` and
   dependence recomputation on; any contained failure (restriction
   violation, rollback exhaustion, validator rejection) refuses the
   candidate.  With a service client attached, this gate fans the
   corpus out as ``optimize`` jobs carrying the candidate source
   inline (``payload["spec_sources"]``), so screening parallelizes
   across worker processes.
3. **coverage** — the candidate must actually fire somewhere on the
   corpus.  A spec that never applies is unfalsifiable and useless;
   it is refused, not vacuously admitted.
4. **oracle** — every (program, transformed) pair the candidate
   produced is checked by the differential oracle over randomized
   environments, plus a deterministic all-``2.5`` environment that
   catches float-only unsoundness (``x mod 1`` is zero for ints but
   not for ``2.5``).  A divergence triggers the shrinker: the
   counterexample program is minimized while still exhibiting the
   divergence and written as a replayable ``!``-header repro file with
   the candidate's GOSpeL source alongside.
5. **network** — the candidate is registered into a shared
   discrimination network next to the standard catalog and re-run with
   ``match_mode="network"`` under full shadow checking; a mismatch
   between network and worklist matchers refuses it.

The pipeline reports every gate's verdict in an
:class:`AdmissionReport`, admitted or not — rejection evidence is the
product here, not an error path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis.manager import AnalysisManager
from repro.frontend.unparse import unparse_program
from repro.genesis.generator import generate_optimizer
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.matching import MatchMismatchError, engine_for
from repro.gospel.errors import GospelError
from repro.ir.program import Program
from repro.opts.catalog import standard_optimizers
from repro.verify.envgen import EnvironmentGenerator, InputEnvironment
from repro.verify.oracle import EquivalenceOracle
from repro.verify.shrink import shrink_program
from repro.workloads.synthetic import random_program

#: driver settings for screening a candidate — bounded everything, so a
#: pathological candidate cannot wedge the pipeline
SCREEN_OPTIONS = DriverOptions(
    apply_all=True,
    max_applications=16,
    recompute_dependences=True,
    enforce_restrictions=True,
    validate=True,
    max_rollbacks=2,
    deadline_seconds=10.0,
    max_match_attempts=50_000,
)


@dataclass(frozen=True)
class GateResult:
    """One gate's verdict."""

    gate: str  # "sema" | "legality" | "coverage" | "oracle" | "network"
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "pass" if self.ok else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"{self.gate}: {mark}{suffix}"


@dataclass
class AdmissionReport:
    """Everything the pipeline learned about one candidate."""

    name: str
    source: str
    admitted: bool
    gates: list[GateResult] = field(default_factory=list)
    applications: int = 0
    counterexample: Optional[Path] = None
    shrunk_statements: Optional[int] = None
    elapsed_seconds: float = 0.0
    origin: str = ""
    rung: Optional[int] = None

    @property
    def rejected_gate(self) -> Optional[str]:
        for gate in self.gates:
            if not gate.ok:
                return gate.gate
        return None

    def summary(self) -> str:
        verdict = "ADMITTED" if self.admitted else (
            f"REJECTED at {self.rejected_gate}"
        )
        return (
            f"{self.name}: {verdict} "
            f"({self.applications} applications, "
            f"{self.elapsed_seconds:.2f}s)"
        )


def halves_environment(template: InputEnvironment) -> InputEnvironment:
    """A deterministic all-``2.5`` clone of an oracle environment.

    The random environment generator leans heavily on small integers;
    a rewrite that is an identity on the integers but not the reals
    (``x mod 1 -> 0``) can survive randomized trials.  Setting every
    scalar, array cell, and input value to ``2.5`` refutes that class
    deterministically.
    """
    return InputEnvironment(
        label="halves",
        scalars={name: 2.5 for name in template.scalars},
        arrays={
            name: {index: 2.5 for index in cells}
            for name, cells in template.arrays.items()
        },
        inputs=[2.5] * len(template.inputs),
    )


def audit_programs() -> list[Program]:
    """Hand-built adversarial corpus members.

    The random corpus initializes scalars from constants and rarely
    produces loop-carried-only consumers, so two whole classes of
    miscompile never reach the oracle from it alone.  These programs
    close that hole deterministically; ``BROKEN_DCE`` and
    ``BROKEN_CTP`` are each refuted by one of them.
    """
    from repro.ir.builder import IRBuilder

    # a statement whose *only* consumer is the next loop iteration:
    # deleting it (flow-independent DCE) changes u whenever the read
    # value of t differs from its in-loop recomputation
    carried = IRBuilder(name="audit_carried_use")
    carried.read("t")
    carried.read("s")
    carried.assign("u", 0)
    with carried.loop("i", 1, 4):
        carried.binary("u", "t", "+", "s")
        carried.binary("t", "s", "+", "i")
    carried.write("u")

    # a constant definition with a conditional redefinition between it
    # and the use: propagating the constant past the branch (reaching-
    # definition-blind CTP) miscompiles every taken-branch environment
    condredef = IRBuilder(name="audit_cond_redef")
    condredef.read("k")
    condredef.assign("x", 3)
    with condredef.if_("k", ">=", 1):
        condredef.assign("x", "k")
    condredef.binary("y", "x", "+", 1)
    condredef.write("y")

    return [carried.build(), condredef.build()]


class AdmissionPipeline:
    """Runs candidates through the five gates over a fixed corpus.

    ``client`` may be a :class:`repro.service.client.ServiceClient`;
    the legality gate then evaluates corpus programs as service jobs
    (candidate source shipped inline in the job payload) instead of
    in-process.  ``out_dir`` receives counterexample repro files and
    the refuted candidate's GOSpeL source; when None, rejection is
    still reported but nothing is persisted.
    """

    def __init__(
        self,
        corpus: Optional[Sequence[Program]] = None,
        *,
        trials: int = 3,
        seed: int = 0,
        out_dir: Optional[Path] = None,
        network_gate: bool = True,
        compare_stores: bool = False,
        max_shrink_attempts: int = 300,
        client=None,
        programs: int = 6,
        program_size: int = 12,
    ) -> None:
        if corpus is None:
            corpus = audit_programs() + [
                random_program(seed * 1_000_003 + i, size=program_size)
                for i in range(programs)
            ]
        self.corpus = list(corpus)
        self.trials = trials
        self.seed = seed
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.network_gate = network_gate
        self.compare_stores = compare_stores
        self.max_shrink_attempts = max_shrink_attempts
        self.client = client

    # ------------------------------------------------------------------
    def evaluate(self, candidate) -> AdmissionReport:
        """Evaluate a :class:`~repro.synth.generalize.Candidate`.

        The candidate's rung-discriminating probes and its mined
        exemplar join the shared corpus for this evaluation — probes
        are what refute an over-general rung deterministically, the
        exemplar is what guarantees a correctly-lifted rung covers.
        """
        extra = tuple(candidate.probes)
        if candidate.exemplar is not None:
            extra += (candidate.exemplar,)
        report = self.evaluate_source(
            candidate.name, candidate.source, extra_corpus=extra
        )
        report.origin = candidate.origin
        report.rung = candidate.rung
        return report

    def evaluate_source(
        self,
        name: str,
        source: str,
        extra_corpus: Sequence[Program] = (),
    ) -> AdmissionReport:
        """Evaluate raw GOSpeL source (also the broken-fixture entry)."""
        started = time.perf_counter()
        report = AdmissionReport(name=name, source=source, admitted=False)

        # gate 1: sema/codegen ------------------------------------------
        try:
            optimizer = generate_optimizer(source, name=name)
        except GospelError as exc:
            report.gates.append(GateResult("sema", False, str(exc)))
            report.elapsed_seconds = time.perf_counter() - started
            return report
        report.gates.append(GateResult("sema", True))

        # gate 2: legality ----------------------------------------------
        corpus = list(extra_corpus) + self.corpus
        transformed = self._screen(name, source, optimizer, corpus, report)
        if transformed is None:
            report.elapsed_seconds = time.perf_counter() - started
            return report

        # gate 3: coverage ----------------------------------------------
        fired = [(orig, after) for orig, after, n in transformed if n]
        report.applications = sum(n for _, _, n in transformed)
        if not fired:
            report.gates.append(
                GateResult(
                    "coverage", False,
                    "candidate never applied on the admission corpus",
                )
            )
            report.elapsed_seconds = time.perf_counter() - started
            return report
        report.gates.append(
            GateResult("coverage", True, f"{report.applications} applications")
        )

        # gate 4: oracle ------------------------------------------------
        if not self._oracle_gate(name, optimizer, fired, report):
            report.elapsed_seconds = time.perf_counter() - started
            return report

        # gate 5: network -----------------------------------------------
        if self.network_gate and not self._network_gate(
            name, optimizer, fired[0][0], report
        ):
            report.elapsed_seconds = time.perf_counter() - started
            return report

        report.admitted = True
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # gate bodies
    # ------------------------------------------------------------------
    def _screen(self, name, source, optimizer, corpus, report):
        """Legality gate; returns [(original, transformed, applied)] or
        None after recording the failure."""
        if self.client is not None:
            return self._screen_service(name, source, corpus, report)
        results = []
        for program in corpus:
            working = program.clone()
            try:
                outcome = run_optimizer(optimizer, working, SCREEN_OPTIONS)
            except Exception as exc:  # codegen'd spec misbehaving
                report.gates.append(
                    GateResult("legality", False, f"driver error: {exc}")
                )
                return None
            if outcome.failures:
                first = outcome.failures[0]
                report.gates.append(
                    GateResult("legality", False, f"contained failure: {first}")
                )
                return None
            results.append((program, working, outcome.applied))

        report.gates.append(GateResult("legality", True))
        return results

    def _screen_service(self, name, source, corpus, report):
        from repro.service.job import Job

        jobs = [
            Job.from_program(
                program,
                (name,),
                SCREEN_OPTIONS,
                payload={"spec_sources": {name: source}},
            )
            for program in corpus
        ]
        results = []
        window = max(1, getattr(self.client, "queue_limit", len(jobs)) or 1)
        outcomes = []
        for start in range(0, len(jobs), window):
            outcomes.extend(self.client.run_batch(jobs[start:start + window]))
        for program, outcome in zip(corpus, outcomes):
            if not outcome.ok:
                detail = (
                    f"{outcome.failure.error_type}: {outcome.failure.error}"
                    if outcome.failure is not None
                    else outcome.status
                )
                report.gates.append(
                    GateResult("legality", False, f"service job failed: {detail}")
                )
                return None
            if outcome.app_failures:
                report.gates.append(
                    GateResult(
                        "legality", False,
                        f"contained failure: {outcome.app_failures[0]}",
                    )
                )
                return None
            results.append(
                (program, outcome.program(), outcome.applications)
            )
        report.gates.append(GateResult("legality", True))
        return results

    def _oracle_gate(self, name, optimizer, fired, report) -> bool:
        oracle = EquivalenceOracle(
            trials=self.trials,
            seed=self.seed,
            compare_stores=self.compare_stores,
        )
        generator = EnvironmentGenerator(self.seed)
        for original, transformed in fired:
            environments = generator.environments(
                [original, transformed], self.trials
            )
            environments.append(halves_environment(environments[0]))
            verdict = oracle.check(original, transformed, environments)
            if not verdict.equivalent:
                divergence = verdict.divergences[0]
                report.gates.append(
                    GateResult("oracle", False, str(divergence))
                )
                self._shrink_counterexample(
                    name, optimizer, original, report
                )
                return False
        report.gates.append(
            GateResult(
                "oracle", True,
                f"{len(fired)} programs x {len(environments)} environments",
            )
        )
        return True

    def _network_gate(self, name, optimizer, program, report) -> bool:
        working = program.clone()
        manager = AnalysisManager(working)
        try:
            engine = engine_for(manager, full_check=True)
            engine.ensure_network(
                list(standard_optimizers().values()) + [optimizer]
            )
            options = DriverOptions(
                apply_all=True,
                max_applications=16,
                validate=True,
                max_rollbacks=2,
                deadline_seconds=10.0,
                match_mode="network",
            )
            run_optimizer(optimizer, working, options, manager=manager)
        except MatchMismatchError as exc:
            report.gates.append(
                GateResult("network", False, f"shadow mismatch: {exc}")
            )
            return False
        except Exception as exc:
            report.gates.append(
                GateResult("network", False, f"network error: {exc}")
            )
            return False
        report.gates.append(GateResult("network", True))
        return True

    # ------------------------------------------------------------------
    # counterexample shrinking
    # ------------------------------------------------------------------
    def _still_diverges(self, optimizer) -> Callable[[Program], bool]:
        oracle = EquivalenceOracle(
            trials=self.trials,
            seed=self.seed,
            compare_stores=self.compare_stores,
        )
        generator = EnvironmentGenerator(self.seed)

        def predicate(program: Program) -> bool:
            working = program.clone()
            try:
                outcome = run_optimizer(optimizer, working, SCREEN_OPTIONS)
            except Exception:
                return False
            if not outcome.applied or outcome.failures:
                return False
            environments = generator.environments(
                [program, working], self.trials
            )
            environments.append(halves_environment(environments[0]))
            return not oracle.check(program, working, environments).equivalent

        return predicate

    def _shrink_counterexample(self, name, optimizer, program, report):
        predicate = self._still_diverges(optimizer)
        if not predicate(program):
            return  # divergence not reproducible standalone; keep verdict
        result = shrink_program(
            program,
            predicate,
            max_attempts=self.max_shrink_attempts,
            name=f"admit_{name}",
        )
        shrunk = result.program
        report.shrunk_statements = result.statements
        if self.out_dir is None:
            return
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = self.out_dir / f"reject_{name}.f"
        headers = [
            f"! synth-candidate: {name}",
            "! gate: oracle",
            f"! opts: {name}",
            f"! oracle-trials: {self.trials}",
            f"! oracle-seed: {self.seed}",
            f"! shrunk-statements: {result.statements}",
        ]
        body = unparse_program(shrunk, name=f"reject_{name}")
        path.write_text("\n".join(headers) + "\n" + body)
        (self.out_dir / f"reject_{name}.gospel").write_text(report.source)
        report.counterexample = path
