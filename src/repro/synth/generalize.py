"""The template-based abstraction ladder: quad windows -> GOSpeL specs.

A mined :class:`~repro.synth.mine.RewriteWindow` is a *concrete*
rewrite — specific variables, specific constants.  The ladder lifts it
into a sequence of candidate specifications with progressively weaker
TYPE/PRECOND clauses, **most general first**:

``shape``
    opcode + operand-kind holes only: every concrete variable becomes
    an operand-kind test (``type(Si.opr_2) == var``), every constant a
    kind test, nothing else.  Usually unsound — this rung exists so
    the admission pipeline demonstrably refuses over-generalization.
``equal``
    ``shape`` plus the operand-equality relations observed in the
    window (``Si.opr_2 == Si.opr_3`` for ``x := y - y``).
``pinned``
    ``equal`` plus the constant-value pins (``Si.opr_3 == 2``) — the
    most specific statement-shaped rung, still fully general over
    variable names.
``guarded`` (delete windows only)
    ``pinned`` plus a second statement binder with a Depend guard
    (``no Sj: flow_dep(Si, Sj);``) — the dependence-qualified rung of
    the ladder, reached only when the unguarded deletion fails.

Rungs that render to identical GOSpeL source are collapsed.  The
admission pipeline walks the ladder top-down and keeps the first rung
that survives every gate: the most general certified spec.

Candidates are built as :mod:`repro.gospel.ast` values and rendered
with :func:`repro.gospel.unparse.unparse_spec`, then travel the normal
``parse -> sema -> codegen`` path — an inferred spec is an ordinary
catalog citizen from its first parse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.gospel.ast import (
    Action,
    Binder,
    BoolOp,
    Compare,
    Cond,
    Declaration,
    DeleteAction,
    DepCond,
    DependClause,
    ElemType,
    ModifyAction,
    NumberLit,
    PatternClause,
    Quant,
    Ref,
    Specification,
    Value,
)
from repro.gospel.unparse import unparse_spec
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Operand, Var
from repro.synth.mine import RewriteWindow

#: quad opcodes the statement ladder can express, with their GOSpeL
#: symbol spellings
OPCODE_SYMBOLS = {
    Opcode.ASSIGN: "assign",
    Opcode.ADD: "add",
    Opcode.SUB: "sub",
    Opcode.MUL: "mul",
    Opcode.DIV: "div",
    Opcode.MOD: "mod",
    Opcode.POW: "pow",
}

#: operand positions of a statement binder, in GOSpeL attribute form
_POSITIONS = ("opr_2", "opr_3")

#: probe programs generated per rung (one raw + the rest value-skewed)
PROBE_COUNT = 3

#: scalar names probes draw from (the synthetic-workload pool)
_PROBE_POOL = ("u", "v", "w", "x", "y", "z")


class GeneralizeError(ValueError):
    """A window the abstraction ladder cannot lift."""


@dataclass
class Candidate:
    """One rung of one window's ladder, ready for admission."""

    name: str
    rung: int
    rung_label: str  # "shape" | "equal" | "pinned" | "guarded"
    spec: Specification
    source: str
    origin: str
    window_key: str
    exemplar = None  # Program, attached by the harness
    #: rung-discriminating probe programs: input-driven scaffolds whose
    #: rewrite site instantiates exactly what this rung generalized
    #: away (random constants where pins were dropped, distinct
    #: variables where equalities were dropped) — the oracle's
    #: environments reach the site through ``read`` statements, so an
    #: over-general rung is refuted deterministically
    probes: tuple[Program, ...] = field(default=())

    def __str__(self) -> str:
        return f"{self.name} (rung {self.rung}: {self.rung_label})"


def _si(attr: str) -> Ref:
    return Ref(base="Si", attrs=(attr,))


def _sym(name: str) -> Ref:
    # bare symbols parse as single-segment Refs; build them the same way
    return Ref(base=name)


def _operand_value(operand: Operand, by_operand: dict) -> Optional[Value]:
    """Express an after-side operand in terms of the before statement."""
    if isinstance(operand, Const):
        return NumberLit(value=operand.value)
    if isinstance(operand, Var):
        position = by_operand.get(operand)
        if position is None:
            return None  # not derivable from the matched statement
        return _si(position)
    return None


def _conjunction(terms: list[Cond]) -> Cond:
    if not terms:
        raise GeneralizeError("empty precondition")
    if len(terms) == 1:
        return terms[0]
    return BoolOp(op="and", terms=tuple(terms))


def window_name(window: RewriteWindow) -> str:
    """A readable, deterministic spec name for a window.

    ``INF_<OPCODE>_<operand tokens>`` with variables lettered X/Y/Z in
    order of appearance and constants spelled inline (``M`` for a
    minus sign): ``x := y - y -> x := 0`` names ``INF_SUB_XX``; the
    deletion of ``x := x`` names ``INF_DEL_ASSIGN_X``.
    """
    before = window.before[0]
    letters: dict[str, str] = {}
    tokens: list[str] = []
    for operand in (before.a, before.b):
        if operand is None:
            continue
        if isinstance(operand, Const):
            tokens.append(str(operand.value).replace("-", "M"))
        elif isinstance(operand, Var):
            if operand.name not in letters:
                letters[operand.name] = "XYZW"[len(letters) % 4]
            tokens.append(letters[operand.name])
    prefix = "INF_DEL" if not window.after else "INF"
    opcode = before.opcode.name
    suffix = "".join(tokens) or "NIL"
    return f"{prefix}_{opcode}_{suffix}"


def ladder(window: RewriteWindow) -> list[Candidate]:
    """All ladder rungs for a window, most general first.

    Returns ``[]`` for windows the statement ladder cannot express
    (multi-statement diffs, array operands in the rewrite slot,
    operands of the after side that do not occur in the before side) —
    the harness reports these as skipped, it does not guess.
    """
    if len(window.before) != 1 or len(window.after) > 1:
        return []
    before = window.before[0]
    if before.opcode not in OPCODE_SYMBOLS:
        return []
    if not isinstance(before.result, Var):
        return []
    operands = {"opr_2": before.a, "opr_3": before.b}
    for operand in operands.values():
        if operand is not None and not isinstance(operand, (Var, Const)):
            return []  # array element in the rewrite slot: may-alias

    # ------------------------------------------------------------------
    # precondition pieces
    # ------------------------------------------------------------------
    shape: list[Cond] = [
        Compare(relop="==", left=_si("opc"),
                right=_sym(OPCODE_SYMBOLS[before.opcode])),
        Compare(relop="==",
                left=_type_of("opr_1"), right=_sym("var")),
    ]
    pins: list[Cond] = []
    for position in _POSITIONS:
        operand = operands[position]
        if operand is None:
            continue
        if isinstance(operand, Var):
            shape.append(
                Compare(relop="==", left=_type_of(position),
                        right=_sym("var"))
            )
        else:
            shape.append(
                Compare(relop="==", left=_type_of(position),
                        right=_sym("const"))
            )
            pins.append(
                Compare(relop="==", left=_si(position),
                        right=NumberLit(value=operand.value))
            )
    equalities: list[Cond] = []
    slots = [("opr_1", before.result)] + [
        (position, operands[position]) for position in _POSITIONS
    ]
    for index, (position, operand) in enumerate(slots):
        for other_position, other in slots[index + 1 :]:
            if operand is not None and operand == other:
                equalities.append(
                    Compare(relop="==", left=_si(position),
                            right=_si(other_position))
                )

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    if window.after:
        actions = _modify_actions(before, window.after[0], operands)
        if actions is None:
            return []
    else:
        actions = [DeleteAction(target=Ref(base="Si"))]

    # ------------------------------------------------------------------
    # assemble the rungs
    # ------------------------------------------------------------------
    name = window_name(window)
    rungs: list[tuple[str, list[Cond], bool]] = [
        ("shape", shape, False),
        ("equal", shape + equalities, False),
        ("pinned", shape + equalities + pins, False),
    ]
    if not window.after:
        rungs.append(("guarded", shape + equalities + pins, True))

    candidates: list[Candidate] = []
    seen_sources: set[str] = set()
    for rung_index, (label, conds, guarded) in enumerate(rungs):
        spec = _assemble(name, conds, actions, guarded)
        source = unparse_spec(spec)
        if source in seen_sources:
            continue  # e.g. no equalities: "equal" collapses into "shape"
        seen_sources.add(source)
        candidate = Candidate(
            name=name,
            rung=rung_index,
            rung_label=label,
            spec=spec,
            source=source,
            origin=window.origin,
            window_key=window.key(),
            probes=probe_programs(before, label, name),
        )
        candidate.exemplar = window.exemplar
        candidates.append(candidate)
    return candidates


def probe_programs(
    before: Quad, rung_label: str, name: str, count: int = PROBE_COUNT
) -> tuple[Program, ...]:
    """Input-driven programs whose rewrite site matches one rung.

    Each probe reads its scalars from the oracle's input stream, emits
    one statement satisfying exactly the rung's precondition —
    equality classes are honored only when the rung keeps them, pinned
    constants only when the rung pins them (dropped pins become random
    constants from 3..9, outside every identity value) — and writes
    every scalar back out.  Probe 0 uses the raw input values (the
    zeros/ones/halves edge environments reach the site verbatim, which
    deterministically refutes division- and fractional-unsound
    rewrites); later probes skew each scalar by a distinct constant so
    any two distinct variables are guaranteed distinct values even in
    constant environments (which refutes dropped-equality rungs).
    """
    equalities_on = rung_label in ("equal", "pinned", "guarded")
    pins_on = rung_label in ("pinned", "guarded")
    slots = [
        ("opr_1", before.result),
        ("opr_2", before.a),
        ("opr_3", before.b),
    ]
    probes = []
    for index in range(count):
        rng = random.Random(f"probe:{name}:{rung_label}:{index}")
        classes: dict[object, str] = {}
        names: list[str] = []

        def scalar_for(slot: str, operand: Var) -> str:
            key = operand.name if equalities_on else slot
            if key not in classes:
                classes[key] = _PROBE_POOL[len(classes) % len(_PROBE_POOL)]
                names.append(classes[key])
            return classes[key]

        fields = {}
        for slot, operand in slots:
            if operand is None:
                fields[slot] = None
            elif isinstance(operand, Var):
                fields[slot] = Var(scalar_for(slot, operand))
            elif pins_on:
                fields[slot] = Const(operand.value)
            else:
                fields[slot] = Const(rng.randint(3, 9))
        builder = IRBuilder(name=f"probe_{name}_{rung_label}_{index}")
        for scalar in names:
            builder.read(scalar)
        if index:
            for offset, scalar in enumerate(names):
                builder.binary(scalar, scalar, "+", offset + index)
        builder.emit(
            Quad(
                before.opcode,
                result=fields["opr_1"],
                a=fields["opr_2"],
                b=fields["opr_3"],
            )
        )
        for scalar in names:
            builder.write(scalar)
        probes.append(builder.build())
    return tuple(probes)


def _type_of(position: str) -> Value:
    from repro.gospel.ast import FuncVal

    return FuncVal(func="type", args=(_si(position),))


def _modify_actions(
    before: Quad, after: Quad, operands: dict
) -> Optional[list[Action]]:
    """The modify sequence rewriting ``before`` into ``after``.

    Returns ``None`` when the after statement is not expressible in
    terms of the matched one.  Operand modifies are ordered so no
    field is read after it has been overwritten (``x := 2*y`` to
    ``x := y + y`` must copy ``opr_2`` from ``opr_3`` *before* any
    write of ``opr_3`` — the scheduler handles the general case and
    refuses true cycles, which would need a temporary).
    """
    if after.opcode not in OPCODE_SYMBOLS:
        return None
    if after.result != before.result:
        return None
    by_operand = {
        operand: position
        for position, operand in reversed(
            [("opr_1", before.result)]
            + [(pos, operands[pos]) for pos in _POSITIONS]
        )
        if operand is not None
    }
    after_fields = {"opr_2": after.a, "opr_3": after.b}
    pending: list[tuple[str, Value, frozenset[str]]] = []
    for position in _POSITIONS:
        old = operands[position]
        new = after_fields[position]
        if new == old:
            continue
        if new is None:
            pending.append((position, _sym("none"), frozenset()))
            continue
        value = _operand_value(new, by_operand)
        if value is None:
            return None
        reads = (
            frozenset(value.attrs[:1]) if isinstance(value, Ref) and
            value.attrs else frozenset()
        )
        pending.append((position, value, reads))

    actions: list[Action] = []
    if after.opcode is not before.opcode:
        actions.append(
            ModifyAction(
                lvalue=_si("opc"),
                new_value=_sym(OPCODE_SYMBOLS[after.opcode]),
            )
        )
    while pending:
        for item in pending:
            target, value, _reads = item
            blocked = any(
                target in other_reads
                for other_target, _v, other_reads in pending
                if other_target != target
            )
            if not blocked:
                actions.append(ModifyAction(lvalue=_si(target),
                                            new_value=value))
                pending.remove(item)
                break
        else:
            return None  # a true swap cycle: needs a temporary
    return actions


def _assemble(
    name: str,
    conds: list[Cond],
    actions: list[Action],
    guarded: bool,
) -> Specification:
    declarations = [
        Declaration(elem_type=ElemType.STMT, names=("Si",))
    ]
    depends: list[DependClause] = []
    if guarded:
        declarations = [
            Declaration(elem_type=ElemType.STMT, names=("Si", "Sj"))
        ]
        depends.append(
            DependClause(
                quant=Quant.NO,
                binders=(Binder(name="Sj"),),
                memberships=(),
                condition=DepCond(
                    kind="flow", src=Ref(base="Si"), dst=Ref(base="Sj")
                ),
            )
        )
    pattern = PatternClause(
        quant=Quant.ANY,
        binders=(Binder(name="Si"),),
        format=_conjunction(conds),
    )
    return Specification(
        name=name,
        declarations=tuple(declarations),
        patterns=(pattern,),
        depends=tuple(depends),
        actions=tuple(actions),
    )
