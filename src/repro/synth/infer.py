"""The inference harness: mine -> generalize -> admit -> emit.

:func:`run_inference` drives the whole loop:

1. mine rewrite windows from the seeded pair generator and from driver
   traces of statement-local catalog optimizers over the fuzz corpus;
2. lift each window through the abstraction ladder
   (:func:`repro.synth.generalize.ladder`), most general rung first;
3. run rungs through the :class:`~repro.synth.admit.AdmissionPipeline`
   until one is certified — the admitted spec is the *most general*
   sound rung, and every more general rung's rejection evidence is
   kept;
4. deduplicate admitted specs against the shipped catalog and each
   other by :func:`~repro.genesis.matching.spec_fingerprint`, so a
   trace-mined rediscovery of ALG or STR does not shadow the original.

:func:`emit_module` renders an admitted set as the source of a Python
catalog module (``repro.opts.inferred`` is a committed instance); the
specs inside are plain GOSpeL text and re-enter through the normal
parser -> codegen path like any hand-written spec.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.genesis.generator import GeneratedOptimizer, generate_optimizer
from repro.genesis.matching import spec_fingerprint
from repro.opts.catalog import build_optimizer
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.specs import STANDARD_SPECS
from repro.synth.admit import AdmissionPipeline, AdmissionReport
from repro.synth.generalize import ladder
from repro.synth.mine import (
    MAX_WINDOW,
    PairGenerator,
    RewriteWindow,
    mine_fuzz_corpus,
    mine_pairs,
)

#: statement-local catalog optimizers whose traces generalize (region
#: transformations diff wider than the window cap; per-opcode DCE
#: traces would only rediscover one delete spec many times over)
TRACE_OPT_NAMES = ("STR", "ALG")


@dataclass
class InferenceConfig:
    """Knobs for one inference run."""

    seed: int = 0
    #: pair-generator stream length (two full passes over the nine
    #: plant templates by default)
    pairs: int = 18
    #: fuzz-corpus programs to trace-mine (statement-local catalog
    #: applications are rare per program, so the trace arm needs a
    #: wider net than the pair generator)
    trace_programs: int = 24
    trace_opts: tuple[str, ...] = TRACE_OPT_NAMES
    #: admission corpus shape
    corpus_programs: int = 5
    corpus_size: int = 12
    trials: int = 3
    #: where rejection counterexamples and admitted ``.gospel`` files
    #: land; None keeps everything in memory
    out_dir: Optional[Path] = None
    network_gate: bool = True
    #: cap on windows entering the ladder (None = no cap); capped runs
    #: report what they dropped
    max_windows: Optional[int] = None


@dataclass(frozen=True)
class AdmittedSpec:
    """One certified, catalog-ready specification."""

    name: str
    source: str
    fingerprint: str
    origin: str
    rung: int
    rung_label: str
    applications: int

    def optimizer(self) -> GeneratedOptimizer:
        return generate_optimizer(self.source, name=self.name)


@dataclass
class InferenceResult:
    """Everything one :func:`run_inference` call produced."""

    admitted: list[AdmittedSpec] = field(default_factory=list)
    #: every failed rung evaluation, in order (includes the general
    #: rungs of candidates that were later admitted at a lower rung)
    rejections: list[AdmissionReport] = field(default_factory=list)
    #: deduplicated windows that entered the ladder
    windows: int = 0
    #: windows the ladder could not express (key -> reason)
    skipped_windows: dict[str, str] = field(default_factory=dict)
    #: total rung evaluations run through the pipeline
    screened: int = 0
    #: admitted specs dropped as duplicates of the shipped catalog or
    #: of an earlier admission (name -> fingerprint)
    duplicates: dict[str, str] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def optimizers(self) -> dict[str, GeneratedOptimizer]:
        return {spec.name: spec.optimizer() for spec in self.admitted}

    def sources(self) -> dict[str, str]:
        return {spec.name: spec.source for spec in self.admitted}

    def summary(self) -> str:
        lines = [
            f"{self.windows} window(s), {self.screened} candidate "
            f"rung(s) screened, {len(self.admitted)} spec(s) admitted, "
            f"{len(self.rejections)} rejection(s), "
            f"{len(self.duplicates)} duplicate(s), "
            f"{len(self.skipped_windows)} window(s) skipped "
            f"[{self.elapsed_seconds:.1f}s]"
        ]
        for spec in self.admitted:
            lines.append(
                f"  + {spec.name} ({spec.rung_label} rung, "
                f"{spec.applications} applications, {spec.origin})"
            )
        for report in self.rejections:
            note = f"rejected at {report.rejected_gate}"
            if report.counterexample is not None:
                note += f", counterexample {report.counterexample}"
            lines.append(f"  - {report.name} [rung {report.rung}]: {note}")
        for key, reason in self.skipped_windows.items():
            lines.append(f"  ~ skipped {key!r}: {reason}")
        return "\n".join(lines)


def catalog_fingerprints() -> dict[str, str]:
    """Fingerprints of every shipped (non-broken) catalog spec."""
    fingerprints: dict[str, str] = {}
    for name in sorted(STANDARD_SPECS) + sorted(EXTENDED_SPECS):
        fingerprints[spec_fingerprint(build_optimizer(name))] = name
    return fingerprints


def run_inference(
    config: Optional[InferenceConfig] = None,
    client=None,
    progress: Optional[Callable[[str], None]] = None,
) -> InferenceResult:
    """Mine, generalize, and admit — one full inference run."""
    config = config or InferenceConfig()
    say = progress or (lambda _message: None)
    started = time.perf_counter()
    result = InferenceResult()

    # ------------------------------------------------------------- mine
    windows: list[RewriteWindow] = []
    seen_keys: set[str] = set()
    generator = PairGenerator(seed=config.seed)
    for window in mine_pairs(generator.pairs(config.pairs)):
        if window.key() not in seen_keys:
            seen_keys.add(window.key())
            windows.append(window)
    if config.trace_programs and config.trace_opts:
        trace_optimizers = [
            build_optimizer(name) for name in config.trace_opts
        ]
        for window in mine_fuzz_corpus(
            trace_optimizers, programs=config.trace_programs
        ):
            if window.key() not in seen_keys:
                seen_keys.add(window.key())
                windows.append(window)
    if config.max_windows is not None and len(windows) > config.max_windows:
        for window in windows[config.max_windows:]:
            result.skipped_windows[window.key()] = "window cap"
        windows = windows[: config.max_windows]
    result.windows = len(windows)
    say(f"mined {len(windows)} rewrite window(s)")

    # ------------------------------------------------- generalize/admit
    pipeline = AdmissionPipeline(
        trials=config.trials,
        seed=config.seed,
        out_dir=config.out_dir,
        network_gate=config.network_gate,
        client=client,
        programs=config.corpus_programs,
        program_size=config.corpus_size,
    )
    shipped = catalog_fingerprints()
    admitted_fingerprints: dict[str, str] = {}
    taken_names: set[str] = set(STANDARD_SPECS) | set(EXTENDED_SPECS)
    for window in windows:
        candidates = ladder(window)
        if not candidates:
            result.skipped_windows[window.key()] = (
                "not expressible by the statement ladder"
            )
            continue
        for candidate in candidates:
            result.screened += 1
            report = pipeline.evaluate(candidate)
            if not report.admitted:
                result.rejections.append(report)
                say(
                    f"{candidate.name} rung {candidate.rung} "
                    f"({candidate.rung_label}): rejected at "
                    f"{report.rejected_gate}"
                )
                continue
            optimizer = generate_optimizer(
                report.source, name=candidate.name
            )
            fingerprint = spec_fingerprint(optimizer)
            if fingerprint in shipped:
                result.duplicates[candidate.name] = shipped[fingerprint]
                say(
                    f"{candidate.name}: duplicate of shipped "
                    f"{shipped[fingerprint]}"
                )
                break
            if fingerprint in admitted_fingerprints:
                result.duplicates[candidate.name] = (
                    admitted_fingerprints[fingerprint]
                )
                break
            name = candidate.name
            serial = 2
            while name in taken_names:
                name = f"{candidate.name}_{serial}"
                serial += 1
            taken_names.add(name)
            admitted_fingerprints[fingerprint] = name
            result.admitted.append(
                AdmittedSpec(
                    name=name,
                    source=report.source,
                    fingerprint=fingerprint,
                    origin=candidate.origin,
                    rung=candidate.rung,
                    rung_label=candidate.rung_label,
                    applications=report.applications,
                )
            )
            say(
                f"{name}: ADMITTED at {candidate.rung_label} rung "
                f"({report.applications} applications)"
            )
            break  # most general certified rung wins; stop the ladder

    # ------------------------------------------------------------- emit
    if config.out_dir is not None:
        out_dir = Path(config.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for spec in result.admitted:
            (out_dir / f"{spec.name}.gospel").write_text(spec.source)
    result.elapsed_seconds = time.perf_counter() - started
    return result


def emit_module(result: InferenceResult) -> str:
    """Render an admitted set as a ``repro.opts``-style catalog module.

    The output is what ``src/repro/opts/inferred.py`` contains: an
    ``INFERRED_SPECS`` dict of GOSpeL sources with per-spec provenance
    comments.  ``tests/synth/test_inferred_catalog.py`` re-runs the
    admission pipeline over the committed module so a stale or
    hand-edited entry cannot silently survive.
    """
    lines = [
        '"""Machine-inferred GOSpeL specifications (generated).',
        "",
        "Produced by ``repro.synth.infer.emit_module`` from an",
        "admission-certified inference run (``genesis infer",
        "--emit-module``).  Every entry passed all five admission",
        "gates: sema/codegen, dependence legality, corpus coverage,",
        "the differential oracle, and the shared-network shadow",
        "check.  Regenerate rather than hand-edit.",
        '"""',
        "",
        "from __future__ import annotations",
        "",
        "INFERRED_SPECS: dict[str, str] = {}",
        "",
    ]
    for spec in result.admitted:
        lines.append(
            f"# origin {spec.origin}; admitted at the "
            f"{spec.rung_label} rung with {spec.applications} "
            f"corpus applications"
        )
        lines.append(f'INFERRED_SPECS["{spec.name}"] = """\\')
        lines.append(spec.source.rstrip("\n"))
        lines.append('"""')
        lines.append("")
    return "\n".join(lines)
