"""Mining candidate rewrites from before/after program pairs.

Three mining sources, all reduced to the same artifact — a
:class:`RewriteWindow`, the minimal contiguous quad window that differs
between an original program and a transformed one:

* **driver traces** (:func:`mine_traces`) — run catalog optimizers one
  application at a time over a program corpus and diff each
  before/after pair.  This closes the loop on the system's own output:
  the harness re-derives STR- and ALG-shaped rules from their traces.
* **the fuzz corpus** (:func:`mine_fuzz_corpus`) — the same trace
  miner pointed at the fuzz campaign's seeded program stream
  (``FuzzConfig.program_seed``), so inference and ``genesis fuzz``
  share one corpus identity.
* **a seeded pair generator** (:class:`PairGenerator`) — plants one
  algebraic-identity rewrite site (drawn from :data:`PLANT_TEMPLATES`)
  into a random straight-line scaffold and emits the before/after
  pair.  This is the stand-in for an external suggestion source (the
  LLM in "Leveraging Large Language Models for Generalizing Peephole
  Optimizations"); the miner, generalizer and admission pipeline treat
  its pairs exactly like trace pairs — including *refusing* the
  deliberately unsound templates it also plants.

Windows are deduplicated by :meth:`RewriteWindow.key`, a
variable-renaming-invariant template of the rewrite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.quad import COMPUTE_OPS, Opcode, Quad
from repro.ir.types import Const, Operand, Var
from repro.verify.fuzz import FuzzConfig
from repro.workloads.synthetic import random_program

#: scalar pool for pair-generator scaffolds (the synthetic workload's
#: pool, so mined exemplars look like fuzz-corpus programs)
SCAFFOLD_SCALARS = ("u", "v", "w", "x", "y", "z")

#: seed stride separating pair-generator streams (prime, like the fuzz
#: harness's program-seed stride)
_PAIR_STRIDE = 7919

#: largest before/after window a miner will keep (bigger diffs are
#: whole-region transformations the statement ladder cannot express)
MAX_WINDOW = 3


@dataclass
class RewriteWindow:
    """The minimal differing quad window of one before/after pair."""

    before: tuple[Quad, ...]
    after: tuple[Quad, ...]
    #: provenance label, e.g. ``pairgen:mul_two:4`` or ``trace:STR:1``
    origin: str
    #: the full original program the window was cut from (admission
    #: uses it as the candidate's exemplar workload)
    exemplar: Program
    exemplar_after: Optional[Program] = None

    def key(self) -> str:
        """Variable-renaming-invariant template of the rewrite.

        Distinct scalar names are numbered in order of first
        appearance, so ``x := y - y -> x := 0`` planted over any
        operand choice dedups to one window.
        """
        names: dict[str, str] = {}

        def operand_token(operand: Optional[Operand]) -> str:
            if operand is None:
                return "_"
            if isinstance(operand, Const):
                return f"c{operand.value}"
            if isinstance(operand, Var):
                if operand.name not in names:
                    names[operand.name] = f"v{len(names)}"
                return names[operand.name]
            return str(operand)  # arrays keep their rendering

        def quad_token(quad: Quad) -> str:
            fields = ",".join(
                operand_token(part)
                for part in (quad.result, quad.a, quad.b)
            )
            return f"{quad.opcode.name}({fields})"

        before = " ".join(quad_token(q) for q in self.before)
        after = " ".join(quad_token(q) for q in self.after) or "<delete>"
        return f"{before} -> {after}"

    def __str__(self) -> str:
        return f"{self.key()}  [{self.origin}]"


@dataclass
class RewritePair:
    """One before/after program pair from a mining source."""

    before: Program
    after: Program
    origin: str


def diff_pair(
    before: Program,
    after: Program,
    origin: str,
    max_window: int = MAX_WINDOW,
) -> Optional[RewriteWindow]:
    """The minimal differing window of a program pair, or ``None``.

    Strips the longest common prefix and suffix (by per-quad content
    hash — qids do not participate) and keeps what is left when it
    fits in ``max_window`` quads per side.
    """
    before_quads = list(before)
    after_quads = list(after)
    lo = 0
    while (
        lo < len(before_quads)
        and lo < len(after_quads)
        and before_quads[lo].content_hash() == after_quads[lo].content_hash()
    ):
        lo += 1
    hi = 0
    while (
        hi < len(before_quads) - lo
        and hi < len(after_quads) - lo
        and before_quads[len(before_quads) - 1 - hi].content_hash()
        == after_quads[len(after_quads) - 1 - hi].content_hash()
    ):
        hi += 1
    window_before = before_quads[lo : len(before_quads) - hi]
    window_after = after_quads[lo : len(after_quads) - hi]
    if not window_before and not window_after:
        return None  # identical programs: nothing to mine
    if len(window_before) > max_window or len(window_after) > max_window:
        return None
    return RewriteWindow(
        before=tuple(quad.copy() for quad in window_before),
        after=tuple(quad.copy() for quad in window_after),
        origin=origin,
        exemplar=before.clone(),
        exemplar_after=after.clone(),
    )


# ----------------------------------------------------------------------
# the seeded pair generator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlantTemplate:
    """One plantable rewrite: concrete before/after quads over chosen
    operands.  ``sound`` records the *expected* verdict — the admission
    pipeline neither sees nor trusts it (the unsound templates exist
    precisely to prove the oracle gate does real work)."""

    key: str
    sound: bool
    build: Callable[[str, str], tuple[tuple[Quad, ...], tuple[Quad, ...]]]


def _stmt(opcode: Opcode, result: str, a, b=None) -> Quad:
    def operand(value):
        if value is None:
            return None
        if isinstance(value, str):
            return Var(value)
        return Const(value)

    return Quad(opcode, result=Var(result), a=operand(a), b=operand(b))


#: The planted rewrite families.  Sound entries are algebraic
#: identities the shipped catalog does *not* cover (ALG only folds
#: right identities); the two unsound entries miscompile on division
#: by zero and on fractional values respectively.
PLANT_TEMPLATES: tuple[PlantTemplate, ...] = (
    PlantTemplate(
        "sub_self", True,
        lambda t, v: (
            (_stmt(Opcode.SUB, t, v, v),),
            (_stmt(Opcode.ASSIGN, t, 0),),
        ),
    ),
    PlantTemplate(
        "mul_zero", True,
        lambda t, v: (
            (_stmt(Opcode.MUL, t, v, 0),),
            (_stmt(Opcode.ASSIGN, t, 0),),
        ),
    ),
    PlantTemplate(
        "add_left_zero", True,
        lambda t, v: (
            (_stmt(Opcode.ADD, t, 0, v),),
            (_stmt(Opcode.ASSIGN, t, v),),
        ),
    ),
    PlantTemplate(
        "mul_left_one", True,
        lambda t, v: (
            (_stmt(Opcode.MUL, t, 1, v),),
            (_stmt(Opcode.ASSIGN, t, v),),
        ),
    ),
    PlantTemplate(
        "mul_two", True,
        lambda t, v: (
            (_stmt(Opcode.MUL, t, 2, v),),
            (_stmt(Opcode.ADD, t, v, v),),
        ),
    ),
    PlantTemplate(
        "pow_zero", True,
        lambda t, v: (
            (_stmt(Opcode.POW, t, v, 0),),
            (_stmt(Opcode.ASSIGN, t, 1),),
        ),
    ),
    PlantTemplate(
        "self_copy", True,
        lambda t, v: (
            (_stmt(Opcode.ASSIGN, t, t),),
            (),
        ),
    ),
    # unsound: y / y is 1 only when y != 0 — division by zero is an
    # observable runtime error, and the zeros environment always fires
    PlantTemplate(
        "div_self", False,
        lambda t, v: (
            (_stmt(Opcode.DIV, t, v, v),),
            (_stmt(Opcode.ASSIGN, t, 1),),
        ),
    ),
    # unsound: y mod 1 is 0 only for integers (2.5 mod 1 == 0.5); the
    # admission pipeline's fractional environment exists for this
    PlantTemplate(
        "mod_one", False,
        lambda t, v: (
            (_stmt(Opcode.MOD, t, v, 1),),
            (_stmt(Opcode.ASSIGN, t, 0),),
        ),
    ),
)


class PairGenerator:
    """Deterministic before/after pair factory.

    Each pair plants one template instance into a random straight-line
    scaffold: every pool scalar initialized, filler arithmetic around
    the planted site, and every pool scalar written at the end — so a
    miscompile at the site is observable in the oracle's write trace.
    """

    def __init__(
        self,
        seed: int = 0,
        templates: Sequence[PlantTemplate] = PLANT_TEMPLATES,
    ):
        self.seed = seed
        self.templates = tuple(templates)

    def pair(self, index: int) -> RewritePair:
        """The ``index``-th pair of this generator's stream."""
        template = self.templates[index % len(self.templates)]
        rng = random.Random(self.seed * _PAIR_STRIDE + index)
        target = rng.choice(SCAFFOLD_SCALARS)
        source = rng.choice(
            [name for name in SCAFFOLD_SCALARS if name != target]
        )
        before_site, after_site = template.build(target, source)
        inits = {
            name: rng.randint(-4, 9) for name in SCAFFOLD_SCALARS
        }
        fillers_before = self._fillers(rng, rng.randint(0, 2))
        fillers_after = self._fillers(rng, rng.randint(0, 2))

        def build(site: tuple[Quad, ...], label: str) -> Program:
            builder = IRBuilder(
                name=f"pair_{template.key}_{index}_{label}"
            )
            for name, value in inits.items():
                builder.assign(name, value)
            for quad in fillers_before:
                builder.emit(quad.copy())
            for quad in site:
                builder.emit(quad.copy())
            for quad in fillers_after:
                builder.emit(quad.copy())
            for name in SCAFFOLD_SCALARS:
                builder.write(name)
            return builder.build()

        return RewritePair(
            before=build(before_site, "before"),
            after=build(after_site, "after"),
            origin=f"pairgen:{template.key}:{index}",
        )

    def pairs(self, count: int) -> list[RewritePair]:
        return [self.pair(index) for index in range(count)]

    def _fillers(self, rng: random.Random, count: int) -> list[Quad]:
        """Neutral filler statements (constants kept away from the
        identity values 0/1/2 so a filler never forms a second rewrite
        site)."""
        fillers = []
        for _ in range(count):
            target = rng.choice(SCAFFOLD_SCALARS)
            left = rng.choice(SCAFFOLD_SCALARS)
            fillers.append(
                _stmt(
                    rng.choice((Opcode.ADD, Opcode.SUB)),
                    target,
                    left,
                    rng.randint(3, 9),
                )
            )
        return fillers


def mine_pairs(
    pairs: Iterable[RewritePair], max_window: int = MAX_WINDOW
) -> list[RewriteWindow]:
    """Diff a stream of program pairs into deduplicated windows."""
    windows: list[RewriteWindow] = []
    seen: set[str] = set()
    for pair in pairs:
        window = diff_pair(
            pair.before, pair.after, pair.origin, max_window=max_window
        )
        if window is None:
            continue
        key = window.key()
        if key in seen:
            continue
        seen.add(key)
        windows.append(window)
    return windows


# ----------------------------------------------------------------------
# driver-trace and fuzz-corpus mining
# ----------------------------------------------------------------------
#: budgets for one trace application (mirrors the fuzz campaign's
#: containment so a pathological program cannot wedge mining)
_TRACE_OPTIONS = DriverOptions(
    apply_all=False,
    max_applications=1,
    max_rollbacks=2,
    deadline_seconds=10.0,
    max_match_attempts=50_000,
)


def mine_traces(
    programs: Iterable[Program],
    optimizers: Sequence,
    max_window: int = MAX_WINDOW,
) -> list[RewriteWindow]:
    """Windows from single catalog-optimizer applications.

    Each (program, optimizer) pair contributes at most one window: the
    diff of the program before and after the optimizer's *first*
    application.  Statement-local transformations (STR, ALG, DCE …)
    produce generalizable windows; region transformations diff too
    wide and are dropped by the window cap — that skip is reported by
    the harness, not silent.
    """
    pairs: list[RewritePair] = []
    for program in programs:
        for optimizer in optimizers:
            work = program.clone()
            result = run_optimizer(optimizer, work, _TRACE_OPTIONS)
            if not result.applied:
                continue
            pairs.append(
                RewritePair(
                    before=program.clone(),
                    after=work,
                    origin=f"trace:{optimizer.name}",
                )
            )
    return mine_pairs(pairs, max_window=max_window)


def mine_fuzz_corpus(
    optimizers: Sequence,
    config: Optional[FuzzConfig] = None,
    programs: int = 4,
    size: int = 12,
    max_window: int = MAX_WINDOW,
) -> list[RewriteWindow]:
    """Trace mining over the fuzz campaign's seeded program stream.

    Uses ``FuzzConfig.program_seed`` so the corpus here is the same
    corpus ``genesis fuzz`` would generate for the same seed.
    """
    config = config or FuzzConfig()
    corpus = [
        random_program(config.program_seed(index), size=size)
        for index in range(programs)
    ]
    return mine_traces(corpus, optimizers, max_window=max_window)
