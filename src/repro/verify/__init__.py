"""Differential-testing oracle for generated optimizers.

The paper argues that GENesis-generated optimizers are correct by
construction: pattern preconditions plus dependence tests guarantee
that every applied transformation preserves semantics.  This package
is the machinery that *checks* that claim empirically:

* :mod:`repro.verify.envgen` — seeded random input environments
  (scalar values, dense array initial states, ``read`` streams) for a
  given program;
* :mod:`repro.verify.oracle` — the equivalence oracle: run the
  reference interpreter on original vs. transformed program over many
  environments and compare observable behaviour, producing structured
  :class:`~repro.verify.oracle.EquivalenceReport` verdicts;
* :mod:`repro.verify.shrink` — counterexample minimization by
  statement/region deletion while the divergence persists;
* :mod:`repro.verify.fuzz` — the fuzz harness: drive randomly
  generated programs through every catalog optimization (and through
  multi-pass pipelines), checking the oracle after each, shrinking and
  saving a replayable repro file for every failure;
* :mod:`repro.verify.fixtures` — deliberately unsound specifications
  used to test that the oracle actually catches miscompiles.

* :mod:`repro.verify.chaos` — the fault-injection harness: wrap any
  optimizer so its ``act`` raises mid-mutation, corrupts the IR, or
  stalls at seeded rates, and run whole pipelines under injected
  faults to prove the transactional driver contains every failure;
* :mod:`repro.verify.netchaos` — the network chaos harness: kill -9
  real server processes mid-job, sever connections mid-response, and
  crash cache writes mid-rename, asserting byte-identical results vs.
  a serial baseline and zero corrupt persistent-cache entries.

Wiring into the rest of the system: ``DriverOptions(verify=True)``
checks every single application in-line (the pipeline and the
interactive session expose the same gate), and the ``genesis fuzz`` /
``genesis chaos`` CLI subcommands run whole campaigns from the shell.
"""

from repro.verify.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosReport,
    ChaosRun,
    ChaosStats,
    chaotic,
    chaotic_catalog,
    run_chaos,
)
from repro.verify.envgen import EnvironmentGenerator, InputEnvironment
from repro.verify.netchaos import (
    NetChaosConfig,
    NetChaosError,
    NetChaosReport,
    NetChaosStats,
    run_network_chaos,
)
from repro.verify.fixtures import BROKEN_SPECS, broken_optimizer
from repro.verify.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    load_repro,
    replay_repro,
    run_fuzz,
    write_repro,
)
from repro.verify.oracle import (
    Divergence,
    EquivalenceOracle,
    EquivalenceReport,
    VerificationError,
    check_equivalence,
)
from repro.verify.shrink import ShrinkResult, shrink_program

__all__ = [
    "BROKEN_SPECS",
    "ChaosConfig",
    "ChaosError",
    "ChaosReport",
    "ChaosRun",
    "ChaosStats",
    "Divergence",
    "EnvironmentGenerator",
    "EquivalenceOracle",
    "EquivalenceReport",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "InputEnvironment",
    "NetChaosConfig",
    "NetChaosError",
    "NetChaosReport",
    "NetChaosStats",
    "ShrinkResult",
    "run_network_chaos",
    "VerificationError",
    "broken_optimizer",
    "chaotic",
    "chaotic_catalog",
    "check_equivalence",
    "run_chaos",
    "load_repro",
    "replay_repro",
    "run_fuzz",
    "shrink_program",
    "write_repro",
]
