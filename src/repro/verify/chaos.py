"""Fault injection: prove the containment layer actually contains.

A robustness mechanism that has never seen a failure is untested code.
This module wraps any :class:`~repro.genesis.generator.GeneratedOptimizer`
in a *chaos decorator* that injects three fault classes into its
``act`` procedure at seeded, configurable rates:

* **raise mid-act** — perform a partial (logged) mutation, then raise
  :class:`ChaosError`: exercises exception rollback of half-applied
  transformations;
* **corrupt** — let the real action complete, then tear the IR (drop a
  structural marker, or append a stray one): exercises
  validation-failure rollback;
* **stall** — sleep before acting: exercises the driver's wall-clock
  deadline budget.

Faults are deterministic given ``ChaosConfig.seed``, so every chaos
run is replayable.  :func:`run_chaos` drives whole pipelines with
injected faults and checks the containment invariants: the run
terminates within budget, every surviving program state passes
:func:`~repro.ir.validate.validate_program`, rollback restores
byte-identical source, and — when nothing was quarantined — the final
program matches the fault-free pipeline's output exactly.  The
``genesis chaos`` CLI subcommand is a thin wrapper over it.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.genesis.driver import DriverOptions
from repro.genesis.generator import GeneratedOptimizer
from repro.genesis.library import MatchContext
from repro.genesis.pipeline import optimize
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.validate import ValidationError, validate_program
from repro.opts.specs import PAPER_TEN
from repro.workloads.programs import SOURCES


class ChaosError(RuntimeError):
    """An injected (not organic) optimizer fault."""


@dataclass
class ChaosConfig:
    """Fault rates and determinism knobs for one chaos campaign."""

    seed: int = 0
    #: probability that an ``act`` call raises after a partial mutation
    act_fault_rate: float = 0.25
    #: probability that an ``act`` call completes, then corrupts the IR
    corrupt_rate: float = 0.0
    #: probability that an ``act`` call sleeps before acting
    stall_rate: float = 0.0
    stall_seconds: float = 0.01


@dataclass
class ChaosStats:
    """What the decorator actually injected (shared across wrappers)."""

    act_calls: int = 0
    raises: int = 0
    corruptions: int = 0
    stalls: int = 0

    @property
    def injected(self) -> int:
        """Faults that should surface as rollbacks."""
        return self.raises + self.corruptions

    @property
    def fault_fraction(self) -> float:
        return self.injected / self.act_calls if self.act_calls else 0.0

    def __str__(self) -> str:
        return (
            f"chaos: {self.act_calls} act call(s), {self.raises} "
            f"raise(s), {self.corruptions} corruption(s), "
            f"{self.stalls} stall(s)"
        )


def _partial_damage(program: Program) -> None:
    """One logged, rollback-coverable mutation simulating a half-done
    action: delete the last non-structural statement."""
    for quad in reversed(program):
        if not quad.is_structural():
            program.remove(quad.qid)
            return


def _corrupt(program: Program) -> None:
    """Tear the IR with a *logged* mutation so validation must fail."""
    for quad in program:
        if quad.opcode in (Opcode.ENDDO, Opcode.ENDIF):
            program.remove(quad.qid)
            return
    program.append(Quad(Opcode.ENDDO))


def chaotic(
    optimizer: GeneratedOptimizer,
    config: ChaosConfig,
    stats: Optional[ChaosStats] = None,
) -> GeneratedOptimizer:
    """Wrap an optimizer so its ``act`` injects faults at seeded rates.

    The wrapper is itself a :class:`GeneratedOptimizer` (same name,
    spec and generated source), so it drops into any driver, pipeline
    or session unchanged.  Fault draws are independent per ``act``
    call and deterministic given the config seed and optimizer name —
    a failed application that the driver retries gets a fresh draw,
    which is exactly how transient production faults behave.
    """
    stats = stats if stats is not None else ChaosStats()
    rng = random.Random(
        (config.seed << 16) ^ zlib.crc32(optimizer.name.encode())
    )
    real_act = optimizer.act

    def act(ctx: MatchContext) -> int:
        stats.act_calls += 1
        if config.stall_rate and rng.random() < config.stall_rate:
            stats.stalls += 1
            time.sleep(config.stall_seconds)
        if config.act_fault_rate and rng.random() < config.act_fault_rate:
            stats.raises += 1
            _partial_damage(ctx.program)
            raise ChaosError(
                f"injected fault in act_{optimizer.name} "
                f"(call {stats.act_calls})"
            )
        outcome = real_act(ctx)
        if config.corrupt_rate and rng.random() < config.corrupt_rate:
            stats.corruptions += 1
            _corrupt(ctx.program)
        return outcome

    return replace(optimizer, act=act)


def chaotic_catalog(
    optimizers: dict[str, GeneratedOptimizer],
    config: ChaosConfig,
    stats: Optional[ChaosStats] = None,
) -> tuple[dict[str, GeneratedOptimizer], ChaosStats]:
    """Chaos-wrap a whole optimizer catalog with one shared stats sink."""
    stats = stats if stats is not None else ChaosStats()
    return (
        {
            name: chaotic(optimizer, config, stats)
            for name, optimizer in optimizers.items()
        },
        stats,
    )


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
@dataclass
class ChaosRun:
    """One program through the chaos pipeline, with its verdicts."""

    program_name: str
    baseline_applications: int
    chaos_applications: int
    rollbacks: int
    stats: ChaosStats
    quarantined: list[str] = field(default_factory=list)
    #: per-optimizer budget stops, e.g. ``"CTP: rollback-budget"``
    stopped: list[str] = field(default_factory=list)
    #: final chaos program passed validate_program
    valid: bool = True
    #: final chaos output == fault-free output (None: a quarantine or
    #: budget stop cut the run short, so the comparison was skipped)
    matches_baseline: Optional[bool] = None
    problems: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        text = (
            f"{self.program_name}: {verdict}, "
            f"{self.chaos_applications}/{self.baseline_applications} "
            f"application(s), {self.rollbacks} rollback(s), "
            f"{self.stats.injected} injected fault(s)"
        )
        if self.quarantined:
            text += f", quarantined: {', '.join(self.quarantined)}"
        if self.stopped:
            text += f", stopped: {', '.join(self.stopped)}"
        for problem in self.problems:
            text += f"\n    problem: {problem}"
        return text


@dataclass
class ChaosReport:
    """Outcome of one whole chaos campaign."""

    config: ChaosConfig
    runs: list[ChaosRun] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def total_injected(self) -> int:
        return sum(run.stats.injected for run in self.runs)

    @property
    def total_rollbacks(self) -> int:
        return sum(run.rollbacks for run in self.runs)

    def summary(self) -> str:
        lines = [
            f"chaos campaign (seed {self.config.seed}): "
            f"{len(self.runs)} program(s), {self.total_injected} injected "
            f"fault(s), {self.total_rollbacks} rollback(s), "
            f"{self.elapsed_seconds:.1f}s — "
            + ("ALL CONTAINED" if self.ok else "CONTAINMENT FAILED")
        ]
        lines.extend(f"  {run}" for run in self.runs)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


def run_chaos(
    config: Optional[ChaosConfig] = None,
    opt_names: Sequence[str] = PAPER_TEN,
    program_names: Optional[Sequence[str]] = None,
    options: Optional[DriverOptions] = None,
    quarantine_after: int = 10,
    optimizers: Optional[dict[str, GeneratedOptimizer]] = None,
    progress: Optional[Callable[[str], None]] = None,
    client=None,
) -> ChaosReport:
    """Run the fault-injection campaign over workload programs.

    For each program, a fault-free pipeline fixes the expected output;
    then the same pipeline runs with chaos-wrapped optimizers and the
    containment invariants are checked:

    1. the run terminates within its budgets (deadline/fuel/rollback
       caps — enforced by the driver, observed here by completion);
    2. the surviving program passes :func:`validate_program` (and the
       driver validated after every application, so no invalid
       intermediate state was ever visible);
    3. with no optimizer quarantined, the chaos output is
       byte-identical to the fault-free output — every injected fault
       was rolled back and retried to the same end state;
    4. quarantined optimizers are reported, never silently dropped.

    ``optimizers`` may inject pre-built (possibly deliberately broken)
    optimizers keyed by name; missing names come from the catalog.

    ``client`` (a :class:`repro.service.client.ServiceClient`)
    parallelizes the fault-free *baseline* pipelines across the
    service's workers; the chaos arms themselves always run locally —
    their fault-injecting closures cannot cross a process boundary.
    Injected ``optimizers`` force fully serial baselines, since the
    service can only rebuild catalog optimizations by name.
    """
    from repro.opts.catalog import build_optimizer

    config = config or ChaosConfig()
    base_options = options or DriverOptions(
        apply_all=True,
        validate=True,
        max_rollbacks=40,
        deadline_seconds=30.0,
        max_match_attempts=200_000,
    )
    if not base_options.validate:
        base_options = replace(base_options, validate=True)
    catalog: dict[str, GeneratedOptimizer] = dict(optimizers or {})
    for name in opt_names:
        if name not in catalog:
            catalog[name] = build_optimizer(name)
    names = list(program_names or SOURCES)
    baselines = None
    if client is not None and not optimizers:
        baselines = _baselines_via_service(
            client, names, tuple(opt_names), base_options, quarantine_after
        )
    report = ChaosReport(config=config)
    start = time.perf_counter()
    for program_name in names:
        run_start = time.perf_counter()
        program = parse_program(SOURCES[program_name])
        if baselines is not None:
            baseline_applications, baseline_out = baselines[program_name]
        else:
            baseline = optimize(
                program.clone(),
                [catalog[name] for name in opt_names],
                options=replace(base_options),
                in_place=True,
                quarantine_after=quarantine_after,
            )
            baseline_applications = baseline.total_applications
            baseline_out = unparse_program(
                baseline.program, name=baseline.program.name
            )

        wrapped, stats = chaotic_catalog(
            {name: catalog[name] for name in opt_names}, config
        )
        working = program.clone()
        chaos_report = optimize(
            working,
            [wrapped[name] for name in opt_names],
            options=replace(base_options),
            in_place=True,
            quarantine_after=quarantine_after,
        )
        run = ChaosRun(
            program_name=program_name,
            baseline_applications=baseline_applications,
            chaos_applications=chaos_report.total_applications,
            rollbacks=chaos_report.total_rollbacks,
            stats=stats,
            quarantined=chaos_report.quarantined,
            stopped=[
                f"{result.optimizer}: {result.stopped}"
                for result in chaos_report.results
                if result.stopped
            ],
        )
        try:
            validate_program(working)
        except ValidationError as error:
            run.valid = False
            run.problems.append(f"invalid final program: {error}")
        restore_failures = [
            failure
            for failure in chaos_report.failures()
            if failure.restored == "none"
        ]
        if restore_failures:
            run.problems.append(
                f"{len(restore_failures)} failure(s) were not restored"
            )
        if not run.quarantined and not run.stopped:
            chaos_out = unparse_program(working, name=working.name)
            run.matches_baseline = chaos_out == baseline_out
            if not run.matches_baseline:
                run.problems.append(
                    "chaos output diverged from the fault-free pipeline "
                    "with no quarantine or budget stop"
                )
        run.elapsed_seconds = time.perf_counter() - run_start
        report.runs.append(run)
        if progress is not None:
            progress(str(run))
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _baselines_via_service(
    client,
    names: Sequence[str],
    opt_names: tuple[str, ...],
    base_options: DriverOptions,
    quarantine_after: int,
) -> Optional[dict[str, tuple[int, str]]]:
    """Fault-free baselines as service jobs: name -> (applications,
    optimized source).

    Each job carries the *same* workload text the serial path parses
    (``Job.from_source(SOURCES[name], ...)``) and the campaign's own
    ``quarantine_after`` (in the job payload, hence in the cache key),
    so the service baseline runs under exactly the serial pipeline's
    settings and is byte-identical to a local one.  Returns None
    (serial fallback) when the driver options cannot cross a process
    boundary.
    """
    from repro.service.job import Job, JobError

    try:
        jobs = {
            program_name: Job.from_source(
                SOURCES[program_name], opt_names, replace(base_options),
                payload={"quarantine_after": quarantine_after},
            )
            for program_name in names
        }
    except JobError:
        return None
    job_ids = {
        program_name: client.submit(job)
        for program_name, job in jobs.items()
    }
    baselines: dict[str, tuple[int, str]] = {}
    for program_name, job_id in job_ids.items():
        result = client.wait(job_id)
        if not result.ok:
            detail = str(result.failure) if result.failure else result.status
            raise RuntimeError(
                f"chaos baseline for {program_name!r} failed in the "
                f"service: {detail}"
            )
        baselines[program_name] = (result.applications, result.source)
    return baselines
