"""Seeded random input environments for differential testing.

An :class:`InputEnvironment` is everything the interpreter needs to run
a program deterministically: initial scalar values, dense initial array
contents, and a stream of values for ``read`` quads.  The
:class:`EnvironmentGenerator` derives environments from the *union* of
names appearing in two programs (original and transformed), so a
transformation that renames or introduces variables still sees fully
initialized state on both sides.

Environments deliberately mix three flavours:

* the **zero** environment (everything 0, the interpreter's own
  default) — catches divergences in initialization handling;
* the **ones** environment (every scalar/cell 1) — catches divergences
  masked by multiplication with zero;
* **random** environments — small integers with the occasional exact
  dyadic float, so arithmetic stays representable and re-association
  noise cannot produce false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import Iterable, Optional

from repro.ir.program import Program
from repro.ir.quad import Opcode
from repro.ir.types import ArrayRef, Number

#: dense fill range per array dimension (covers the synthetic
#: workload's 1..12 indexing with its ±1 subscript offsets)
DEFAULT_EXTENT = (0, 13)
#: extent used for dimensions beyond the first (keeps rank-3 arrays
#: from exploding to thousands of cells per environment)
INNER_EXTENT = (0, 8)
#: how many values to pre-generate for the ``read`` stream
READ_STREAM_LENGTH = 64


@dataclass
class InputEnvironment:
    """One concrete initial state for an interpreter run."""

    label: str
    scalars: dict[str, Number] = field(default_factory=dict)
    arrays: dict[str, dict[tuple[int, ...], Number]] = field(
        default_factory=dict
    )
    inputs: list[Number] = field(default_factory=list)

    def bounds(self) -> dict[str, tuple[tuple[int, int], ...]]:
        """Per-array index bounds implied by the dense initial fill."""
        result: dict[str, tuple[tuple[int, int], ...]] = {}
        for name, cells in self.arrays.items():
            if not cells:
                continue
            rank = len(next(iter(cells)))
            dims = []
            for axis in range(rank):
                coords = [index[axis] for index in cells]
                dims.append((min(coords), max(coords)))
            result[name] = tuple(dims)
        return result

    def __str__(self) -> str:
        return (
            f"env {self.label}: {len(self.scalars)} scalar(s), "
            f"{len(self.arrays)} array(s), {len(self.inputs)} input(s)"
        )


def array_ranks(program: Program) -> dict[str, int]:
    """Maximum subscript rank per array referenced by the program."""
    ranks: dict[str, int] = {}
    for quad in program:
        for operand in (quad.result, quad.a, quad.b, quad.step):
            if isinstance(operand, ArrayRef):
                ranks[operand.name] = max(
                    ranks.get(operand.name, 0), len(operand.subscripts)
                )
    return ranks


def count_reads(program: Program) -> int:
    """Static count of ``read`` quads (loop bodies multiply at runtime)."""
    return sum(1 for quad in program if quad.opcode is Opcode.READ)


class EnvironmentGenerator:
    """Deterministic environment factory for a pair of programs."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    # ------------------------------------------------------------------
    def environments(
        self,
        programs: Iterable[Program],
        trials: int = 3,
    ) -> list[InputEnvironment]:
        """Edge-case environments plus ``trials`` random ones.

        The name universe is the union over ``programs`` so original
        and transformed versions are both fully covered.
        """
        scalars: set[str] = set()
        ranks: dict[str, int] = {}
        reads = 0
        for program in programs:
            scalars |= set(program.scalar_names())
            for name, rank in array_ranks(program).items():
                ranks[name] = max(ranks.get(name, 0), rank)
            reads = max(reads, count_reads(program))
        environments = [
            self._constant_env("zeros", 0, scalars, ranks, reads),
            self._constant_env("ones", 1, scalars, ranks, reads),
        ]
        for trial in range(trials):
            environments.append(
                self._random_env(f"random-{trial}", trial, scalars, ranks)
            )
        return environments

    # ------------------------------------------------------------------
    def _cells(self, rank: int) -> list[tuple[int, ...]]:
        extents = [DEFAULT_EXTENT] + [INNER_EXTENT] * (rank - 1)
        indices: list[tuple[int, ...]] = [()]
        for low, high in extents:
            indices = [
                index + (coord,)
                for index in indices
                for coord in range(low, high + 1)
            ]
        return indices

    def _constant_env(
        self,
        label: str,
        value: Number,
        scalars: set[str],
        ranks: dict[str, int],
        reads: int,
    ) -> InputEnvironment:
        return InputEnvironment(
            label=label,
            scalars={name: value for name in sorted(scalars)},
            arrays={
                name: {index: value for index in self._cells(rank)}
                for name, rank in sorted(ranks.items())
            },
            inputs=[value] * max(reads, READ_STREAM_LENGTH),
        )

    def _random_env(
        self,
        label: str,
        trial: int,
        scalars: set[str],
        ranks: dict[str, int],
    ) -> InputEnvironment:
        rng = random.Random(f"{self.seed}:{trial}")
        return InputEnvironment(
            label=label,
            scalars={name: self._value(rng) for name in sorted(scalars)},
            arrays={
                name: {
                    index: self._value(rng) for index in self._cells(rank)
                }
                for name, rank in sorted(ranks.items())
            },
            inputs=[self._value(rng) for _ in range(READ_STREAM_LENGTH)],
        )

    @staticmethod
    def _value(rng: random.Random) -> Number:
        # mostly small integers; sometimes an exact dyadic float, so
        # float arithmetic stays bit-exact across equivalent orderings
        if rng.random() < 0.8:
            return rng.randint(-9, 9)
        return rng.randint(-19, 19) / 2


def environments_for(
    before: Program,
    after: Optional[Program] = None,
    trials: int = 3,
    seed: int = 0,
) -> list[InputEnvironment]:
    """Convenience wrapper: environments covering one or two programs."""
    programs = [before] if after is None else [before, after]
    return EnvironmentGenerator(seed).environments(programs, trials=trials)
