"""Deliberately unsound specifications for testing the oracle.

A differential-testing oracle is only trustworthy if it demonstrably
*catches* miscompiles, so this module keeps a small catalog of broken
GOSpeL specifications — real specifications with one load-bearing
safety clause removed.  They generate and run like any catalog
optimizer, and they miscompile real programs; the verify test-suite
asserts the oracle flags them and that the shrinker reduces their
counterexamples to a few statements.

These are **test fixtures**: never register them in a real session.
"""

from __future__ import annotations

from repro.genesis.generator import GeneratedOptimizer, generate_optimizer

#: Constant propagation with the "no other reaching definition" clause
#: deleted: it propagates a constant into uses that other definitions
#: also reach (e.g. a conditional redefinition), which miscompiles any
#: program where the other path is taken.
BROKEN_CTP = """
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const AND
            type(Si.opr_1) == var;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
ACTION
  modify(operand(Sj, pos), Si.opr_2);
"""

#: Dead-code "elimination" that only requires the result to be unused
#: *loop-independently*: statements whose value is consumed by a later
#: iteration (direction ``<``) are deleted anyway.
BROKEN_DCE = """
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: class(Si) == compute;
  Depend
    no Sj: flow_dep(Si, Sj, (=));
ACTION
  delete(Si);
"""

BROKEN_SPECS: dict[str, str] = {
    "BROKEN_CTP": BROKEN_CTP,
    "BROKEN_DCE": BROKEN_DCE,
}


def broken_optimizer(name: str = "BROKEN_CTP") -> GeneratedOptimizer:
    """Generate one of the deliberately unsound optimizers."""
    try:
        source = BROKEN_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown broken fixture {name!r}; have {sorted(BROKEN_SPECS)}"
        ) from None
    return generate_optimizer(source, name=name)
