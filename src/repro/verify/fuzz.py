"""The differential fuzz harness.

Drives :func:`repro.workloads.synthetic.random_program` through every
catalog optimization — each alone, and all of them as one multi-pass
pipeline — and checks the equivalence oracle after every transformed
program.  Failures are shrunk to minimal counterexamples and saved as
replayable mini-Fortran files whose ``!`` comment header records the
optimization sequence and oracle settings.

Entry points:

* :func:`run_fuzz` — one whole campaign, returning a
  :class:`FuzzReport`;
* :func:`write_repro` / :func:`load_repro` / :func:`replay_repro` —
  the counterexample file format and its replay.

The ``genesis fuzz`` CLI subcommand is a thin wrapper over
:func:`run_fuzz`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis.manager import AnalysisManager
from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.generator import GeneratedOptimizer
from repro.ir.program import Program
from repro.opts.specs import PAPER_TEN
from repro.verify.oracle import EquivalenceOracle, EquivalenceReport
from repro.verify.shrink import shrink_program
from repro.workloads.synthetic import random_program

#: spread multiplier turning (campaign seed, iteration) into a
#: program-generator seed
_SEED_STRIDE = 1_000_003

ProgressHook = Callable[[str], None]


@dataclass
class FuzzConfig:
    """Campaign parameters (all deterministic given ``seed``)."""

    seed: int = 0
    iterations: int = 50
    opt_names: tuple[str, ...] = PAPER_TEN
    size: int = 12
    max_depth: int = 2
    #: oracle environments per check (plus the two edge-case envs)
    trials: int = 3
    #: also run the whole catalog as one multi-pass pipeline
    pipeline: bool = True
    shrink: bool = True
    max_applications: int = 25
    max_shrink_attempts: int = 400
    #: containment budgets so one pathological program/optimizer pair
    #: cannot wedge a whole campaign: rolled-back failures per
    #: optimizer, wall-clock per driver run, and match-attempt fuel
    max_rollbacks: int = 10
    deadline_seconds: Optional[float] = 20.0
    max_match_attempts: Optional[int] = 100_000
    #: where to write counterexample files (None: keep in memory only)
    out_dir: Optional[str] = None

    def program_seed(self, iteration: int) -> int:
        return self.seed * _SEED_STRIDE + iteration


@dataclass
class FuzzFailure:
    """One oracle divergence, with its shrunk counterexample."""

    iteration: int
    program_seed: int
    opt_names: tuple[str, ...]
    report: EquivalenceReport
    source: str
    shrunk_source: Optional[str] = None
    shrunk_statements: Optional[int] = None
    repro_path: Optional[Path] = None

    def __str__(self) -> str:
        opts = "+".join(self.opt_names)
        where = f" -> {self.repro_path}" if self.repro_path else ""
        shrunk = (
            f", shrunk to {self.shrunk_statements} quad(s)"
            if self.shrunk_statements is not None
            else ""
        )
        return (
            f"iteration {self.iteration} (seed {self.program_seed}) "
            f"{opts}: {self.report.divergences[0]}{shrunk}{where}"
        )


@dataclass
class FuzzReport:
    """What one campaign did."""

    config: FuzzConfig
    programs: int = 0
    checks: int = 0
    applications: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.programs} program(s), {self.checks} oracle "
            f"check(s), {self.applications} application(s), "
            f"{len(self.failures)} failure(s), "
            f"{self.elapsed_seconds:.1f}s"
        ]
        lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


def _apply_sequence(
    optimizers: Sequence[GeneratedOptimizer],
    program: Program,
    config: FuzzConfig,
) -> int:
    """Apply optimizers in order to ``program`` (in place); total count.

    One :class:`AnalysisManager` serves the whole sequence, so the
    dependence graph carries incrementally across passes instead of
    being rebuilt per optimizer.  Driver budgets from the config bound
    each pass: a crashing ``act`` rolls back and is retried up to
    ``max_rollbacks`` times instead of killing the campaign, and the
    deadline/fuel caps stop runaway match loops.
    """
    options = _fuzz_driver_options(config)
    manager = AnalysisManager(program)
    applied = 0
    for optimizer in optimizers:
        applied += run_optimizer(
            optimizer, program, options, manager=manager
        ).applied
    return applied


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    optimizers: Optional[dict[str, GeneratedOptimizer]] = None,
    progress: Optional[ProgressHook] = None,
    client=None,
) -> FuzzReport:
    """Run one fuzz campaign.

    ``optimizers`` may inject pre-built (possibly deliberately broken)
    optimizers keyed by name; missing names are generated from the
    catalog.

    ``client`` (a :class:`repro.service.client.ServiceClient`) batches
    every per-iteration transformation through the optimization
    service, parallelizing the campaign across the service's workers;
    oracle checking and counterexample shrinking stay local.  Injected
    ``optimizers`` force the serial path — ad-hoc callables cannot
    cross a process boundary.
    """
    config = config or FuzzConfig()
    optimizers = dict(optimizers or {})
    use_service = client is not None and not optimizers
    for name in config.opt_names:
        if name not in optimizers:
            optimizers[name] = _resolve_optimizer(name)
    oracle = EquivalenceOracle(trials=config.trials, seed=config.seed)
    report = FuzzReport(config=config)
    start = time.perf_counter()
    check_plan = [(name,) for name in config.opt_names]
    if config.pipeline and len(config.opt_names) > 1:
        check_plan.append(tuple(config.opt_names))
    if use_service:
        _run_fuzz_service(
            report, oracle, config, check_plan, optimizers, client, progress
        )
        report.elapsed_seconds = time.perf_counter() - start
        return report
    for iteration in range(config.iterations):
        seed = config.program_seed(iteration)
        program = random_program(
            seed, size=config.size, max_depth=config.max_depth
        )
        report.programs += 1
        for opt_names in check_plan:
            _check_one(
                report, oracle, config, iteration, seed, program,
                opt_names, [optimizers[name] for name in opt_names],
            )
        if progress is not None and (iteration + 1) % 10 == 0:
            progress(
                f"{iteration + 1}/{config.iterations} iterations, "
                f"{report.checks} checks, "
                f"{len(report.failures)} failure(s)"
            )
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _fuzz_driver_options(config: FuzzConfig) -> DriverOptions:
    """The per-optimizer budgets both fuzz paths run under."""
    return DriverOptions(
        apply_all=True,
        max_applications=config.max_applications,
        max_rollbacks=config.max_rollbacks,
        deadline_seconds=config.deadline_seconds,
        max_match_attempts=config.max_match_attempts,
    )


def _run_fuzz_service(
    report: FuzzReport,
    oracle: EquivalenceOracle,
    config: FuzzConfig,
    check_plan: list[tuple[str, ...]],
    optimizers: dict[str, GeneratedOptimizer],
    client,
    progress: Optional[ProgressHook],
) -> None:
    """The service-backed campaign: windowed submit, verdict locally.

    Submissions are windowed to the service's admission-queue limit —
    at most that many jobs are in flight at once, the oldest collected
    before the next is submitted — so an arbitrarily large campaign
    (iterations × check-plan entries) never trips the bounded queue's
    ``QueueFull`` rejection.  A rejection that slips through anyway
    (a shared service filling up behind the window) is retried after
    the wait has freed queue room, not treated as fatal.

    Only catalog optimizations can execute in a worker; a plan that
    names broken-fixture optimizers falls back to serial per-check
    transformation (they exist precisely to fail, and shrinking reruns
    them locally anyway).
    """
    from repro.service.job import Job, REJECTED
    from repro.service.scheduler import ServiceError
    from repro.verify.fixtures import BROKEN_SPECS

    options = _fuzz_driver_options(config)
    window = max(1, getattr(client, "queue_limit", 256))
    inflight: deque[tuple[int, int, Program, tuple[str, ...], Job, int]]
    inflight = deque()
    done = 0

    def collect_oldest() -> None:
        nonlocal done
        iteration, seed, program, opt_names, job, job_id = inflight.popleft()
        result = client.wait(job_id)
        for retry in range(3):
            if result.status != REJECTED:
                break
            # a rejection resolves instantly, so give the queue a
            # beat to drain before resubmitting
            time.sleep(0.05 * (retry + 1))
            result = client.wait(client.submit(job))
        if not result.ok:
            raise ServiceError(
                f"fuzz job {job_id} ({'+'.join(opt_names)}, seed {seed}) "
                f"did not complete: {result.failure or result.status}"
            )
        report.applications += result.applications
        done += 1
        if progress is not None and done % 25 == 0:
            progress(
                f"{done} service check(s), "
                f"{len(report.failures)} failure(s)"
            )
        if result.applications == 0:
            return
        report.checks += 1
        verdict = oracle.check(program, result.program())
        if verdict.equivalent:
            return
        _record_failure(
            report, oracle, config, iteration, seed, program, opt_names,
            [optimizers[name] for name in opt_names], verdict,
        )

    for iteration in range(config.iterations):
        seed = config.program_seed(iteration)
        program = random_program(
            seed, size=config.size, max_depth=config.max_depth
        )
        report.programs += 1
        for opt_names in check_plan:
            if any(name in BROKEN_SPECS for name in opt_names):
                _check_one(
                    report, oracle, config, iteration, seed, program,
                    opt_names, [optimizers[name] for name in opt_names],
                )
                continue
            if len(inflight) >= window:
                collect_oldest()
            job = Job.from_program(program, opt_names, options)
            inflight.append(
                (iteration, seed, program, opt_names, job, client.submit(job))
            )
    while inflight:
        collect_oldest()


def _check_one(
    report: FuzzReport,
    oracle: EquivalenceOracle,
    config: FuzzConfig,
    iteration: int,
    seed: int,
    program: Program,
    opt_names: tuple[str, ...],
    optimizers: list[GeneratedOptimizer],
) -> None:
    transformed = program.clone()
    applied = _apply_sequence(optimizers, transformed, config)
    report.applications += applied
    if applied == 0:
        return
    report.checks += 1
    verdict = oracle.check(program, transformed)
    if verdict.equivalent:
        return
    _record_failure(
        report, oracle, config, iteration, seed, program, opt_names,
        optimizers, verdict,
    )


def _record_failure(
    report: FuzzReport,
    oracle: EquivalenceOracle,
    config: FuzzConfig,
    iteration: int,
    seed: int,
    program: Program,
    opt_names: tuple[str, ...],
    optimizers: list[GeneratedOptimizer],
    verdict: EquivalenceReport,
) -> None:
    """Shrink and save one oracle divergence (always runs locally)."""
    failure = FuzzFailure(
        iteration=iteration,
        program_seed=seed,
        opt_names=opt_names,
        report=verdict,
        source=unparse_program(program, name=program.name),
    )
    if config.shrink:
        def still_fails(candidate: Program) -> bool:
            candidate_transformed = candidate.clone()
            if _apply_sequence(optimizers, candidate_transformed, config) == 0:
                return False
            return not oracle.check(candidate, candidate_transformed).equivalent

        shrunk = shrink_program(
            program, still_fails, max_attempts=config.max_shrink_attempts
        )
        failure.shrunk_source = unparse_program(
            shrunk.program, name=f"repro_{seed}"
        )
        failure.shrunk_statements = shrunk.statements
    if config.out_dir is not None:
        out_dir = Path(config.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        failure.repro_path = out_dir / (
            f"repro_{'_'.join(opt_names).lower()}_{seed}.f"
        )
        write_repro(failure.repro_path, failure, config)
    report.failures.append(failure)


# ----------------------------------------------------------------------
# counterexample files
# ----------------------------------------------------------------------
def write_repro(
    path: Path | str, failure: FuzzFailure, config: FuzzConfig
) -> Path:
    """Save a failure as a replayable mini-Fortran file.

    The ``!`` header comments carry everything replay needs; the body
    is the (shrunk, when available) program source, directly parsable
    by the frontend since the lexer skips comments.
    """
    path = Path(path)
    divergence = failure.report.divergences[0]
    header = [
        "! genesis-fuzz counterexample",
        f"! opts: {','.join(failure.opt_names)}",
        f"! program-seed: {failure.program_seed}",
        f"! oracle-trials: {config.trials}",
        f"! oracle-seed: {config.seed}",
        f"! divergence: {divergence}",
    ]
    body = failure.shrunk_source or failure.source
    path.write_text("\n".join(header) + "\n" + body)
    return path


def load_repro(path: Path | str) -> tuple[dict[str, str], Program]:
    """Parse a counterexample file into (metadata, program)."""
    text = Path(path).read_text()
    metadata: dict[str, str] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("!"):
            continue
        comment = stripped.lstrip("!").strip()
        if ":" in comment:
            key, _, value = comment.partition(":")
            metadata.setdefault(key.strip(), value.strip())
    return metadata, parse_program(text)


def replay_repro(
    path: Path | str,
    optimizers: Optional[dict[str, GeneratedOptimizer]] = None,
) -> tuple[EquivalenceReport, int]:
    """Re-run a saved counterexample: (oracle verdict, applications).

    A still-broken optimizer replays as divergent; once the bug is
    fixed the same file replays as equivalent (or applies nowhere).
    Unknown optimizer names fall back to the broken-fixture catalog so
    the oracle's own regression files replay too.
    """
    metadata, program = load_repro(path)
    opt_names = tuple(
        name.strip()
        for name in metadata.get("opts", "").split(",")
        if name.strip()
    )
    if not opt_names:
        raise ValueError(f"{path}: no '! opts:' header to replay")
    optimizers = dict(optimizers or {})
    for name in opt_names:
        if name in optimizers:
            continue
        optimizers[name] = _resolve_optimizer(name, Path(path).parent)
    trials = int(metadata.get("oracle-trials", 3))
    seed = int(metadata.get("oracle-seed", 0))
    config = FuzzConfig(seed=seed, trials=trials, opt_names=opt_names)
    transformed = program.clone()
    applied = _apply_sequence(
        [optimizers[name] for name in opt_names], transformed, config
    )
    oracle = EquivalenceOracle(trials=trials, seed=seed)
    return oracle.check(program, transformed), applied


def _resolve_optimizer(
    name: str, search_dir: Optional[Path] = None
) -> GeneratedOptimizer:
    from repro.verify.fixtures import BROKEN_SPECS, broken_optimizer

    if name in BROKEN_SPECS:
        return broken_optimizer(name)
    from repro.opts.catalog import build_optimizer

    try:
        return build_optimizer(name)
    except KeyError:
        # Refuted inference candidates never join a catalog, but the
        # admission pipeline leaves their GOSpeL source next to the
        # counterexample as ``reject_<name>.gospel`` — replay from it.
        if search_dir is not None:
            sibling = search_dir / f"reject_{name}.gospel"
            if sibling.exists():
                from repro.genesis.generator import generate_optimizer

                return generate_optimizer(sibling.read_text(), name=name)
        raise
