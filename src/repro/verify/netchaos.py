"""The network chaos harness: crash servers, sever wires, corrupt
nothing.

Where :mod:`repro.verify.chaos` attacks the transactional driver from
*inside* an optimizer (acts that raise, corrupt, or stall), this
harness attacks the PR 8 network service from *outside* — the three
failure families an operator actually meets:

* **kill -9 mid-job** — a real server process, jobs in flight, SIGKILL
  with no drain; the harness restarts it on the same port and the
  client's reconnect-and-resubmit retries collect every result anyway;
* **sever mid-response** — the server's seeded ``chaos_disconnect``
  writes half a response line and hard-aborts the TCP connection; the
  client must treat the torn line as a transport failure (the job
  already ran, so the resubmission is a disk-cache hit);
* **crash mid-cache-write** — ``REPRO_CHAOS_DISKCACHE=crash-put:<n>``
  makes the server ``os._exit`` halfway through writing a cache temp
  file; atomic rename means the published tier can never hold the
  half-written entry.

Every round replays the same seeded job list against one shared cache
directory, so later rounds (and the final warm-restart pass) must be
served from the persistent tier.  The campaign passes only if

1. every job eventually resolves ``completed`` with **byte-identical**
   optimized source vs. a serial no-network baseline,
2. :meth:`~repro.service.diskcache.DiskCache.verify` finds **zero**
   corrupt entries in the shared cache directory, and
3. a fresh server on the same directory serves the warm-restart pass
   ≥ ``warm_hit_floor`` (default 95%) from disk.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.genesis.driver import DriverOptions
from repro.service.diskcache import CHAOS_ENV, DiskCache
from repro.service.job import Job, JobResult
from repro.service.net.client import NetworkServiceClient, RetryPolicy
from repro.workloads.programs import SOURCES


class NetChaosError(RuntimeError):
    """The harness itself could not run (not a campaign verdict)."""


#: pipelines the seeded campaign draws from (all terminate in DCE so
#: the optimized sources differ visibly from the originals)
_PIPELINES = (
    ("CTP", "DCE"),
    ("CFO", "DCE"),
    ("CTP", "CFO", "DCE"),
    ("CTP", "CFO", "CPP", "DCE"),
)

#: chaos applied per round, rotating; crash-put must come first —
#: later rounds are disk-cache hits, so no further puts would crash
_ROUND_KINDS = ("crash-put", "kill9", "sever")


@dataclass
class NetChaosConfig:
    seed: int = 0
    #: server lifetimes; round ``i`` applies ``_ROUND_KINDS[i % 3]``
    rounds: int = 3
    #: seeded (workload, pipeline) jobs replayed every round
    jobs: int = 12
    backend: str = "process"
    workers: int = 2
    #: server-side probability of severing a connection mid-response
    #: during a "sever" round
    sever_rate: float = 0.4
    #: the put index that crashes the server in a "crash-put" round
    crash_put_after: int = 3
    #: client retry budget (kept tight: the harness restarts servers
    #: synchronously, so one reconnect normally suffices)
    retry_attempts: int = 6
    request_timeout: float = 60.0
    startup_timeout: float = 30.0
    #: required disk-served fraction on the final warm-restart pass
    warm_hit_floor: float = 0.95


@dataclass
class NetChaosStats:
    jobs: int = 0
    resolved: int = 0
    kills: int = 0
    crash_exits: int = 0
    restarts: int = 0
    drains: int = 0
    client_attempts: int = 0
    retried_submissions: int = 0
    mismatches: int = 0
    corrupt_entries: int = 0
    warm_hits: int = 0
    warm_misses: int = 0


@dataclass
class NetChaosReport:
    config: NetChaosConfig
    stats: NetChaosStats
    mismatched_keys: list = field(default_factory=list)
    corrupt_paths: list = field(default_factory=list)
    warm_hit_rate: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.stats.mismatches == 0
            and self.stats.corrupt_entries == 0
            and self.warm_hit_rate >= self.config.warm_hit_floor
        )

    def summary(self) -> str:
        s = self.stats
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"netchaos[seed={self.config.seed}]: {verdict}: "
            f"{s.resolved}/{s.jobs} job(s) resolved over "
            f"{self.config.rounds} round(s); "
            f"{s.kills} kill -9, {s.crash_exits} cache-write crash(es), "
            f"{s.restarts} restart(s), {s.drains} graceful drain(s); "
            f"{s.client_attempts} client attempt(s), "
            f"{s.retried_submissions} retried; "
            f"{s.mismatches} mismatch(es) vs serial baseline, "
            f"{s.corrupt_entries} corrupt disk entr(ies), "
            f"warm-restart {self.warm_hit_rate:.0%} disk-served "
            f"(floor {self.config.warm_hit_floor:.0%})"
        )


class _ServerHandle:
    """One ``genesis serve --listen`` subprocess under harness control."""

    def __init__(
        self,
        config: NetChaosConfig,
        cache_dir: str,
        scratch: Path,
        port: int = 0,
        sever_rate: float = 0.0,
        crash_put_after: Optional[int] = None,
    ):
        self.config = config
        self.port_file = scratch / f"port-{time.monotonic_ns()}"
        env = dict(os.environ)
        src_root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        if crash_put_after is not None:
            env[CHAOS_ENV] = f"crash-put:{crash_put_after}"
        else:
            env.pop(CHAOS_ENV, None)
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--listen", f"127.0.0.1:{port}",
            "--backend", config.backend,
            "--workers", str(config.workers),
            "--cache-dir", cache_dir,
            "--port-file", str(self.port_file),
            "--chaos-seed", str(config.seed),
            "--chaos-disconnect", str(sever_rate),
            "--drain-grace", "20",
        ]
        self.proc = subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + config.startup_timeout
        while not self.port_file.exists():
            if self.proc.poll() is not None:
                raise NetChaosError(
                    f"server died during startup "
                    f"(exit {self.proc.returncode})"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise NetChaosError("server did not bind in time")
            time.sleep(0.02)
        self.port = int(self.port_file.read_text())

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def drain(self) -> int:
        """SIGTERM and wait; returns the exit status (0 = clean)."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)


def _campaign_jobs(config: NetChaosConfig) -> list[Job]:
    import random

    rng = random.Random(config.seed)
    names = sorted(SOURCES)
    options = DriverOptions(apply_all=True)
    jobs = []
    for _ in range(config.jobs):
        name = rng.choice(names)
        pipeline = _PIPELINES[rng.randrange(len(_PIPELINES))]
        jobs.append(Job.from_source(SOURCES[name], pipeline, options))
    return jobs


def _serial_baseline(jobs: list[Job]) -> dict[str, JobResult]:
    """Fault-free, network-free ground truth, keyed by cache key."""
    from repro.service.client import ServiceClient

    baseline: dict[str, JobResult] = {}
    with ServiceClient(backend="inprocess", cache_capacity=0) as client:
        for job in jobs:
            key = job.cache_key()
            if key not in baseline:
                baseline[key] = client.wait(client.submit(job))
    return baseline


def run_network_chaos(
    config: Optional[NetChaosConfig] = None,
    progress=None,
    scratch_dir: Optional[str] = None,
) -> NetChaosReport:
    """Run the seeded campaign; see the module docstring for the rules."""
    import tempfile

    config = config or NetChaosConfig()
    say = progress or (lambda message: None)
    stats = NetChaosStats()
    report = NetChaosReport(config=config, stats=stats)

    jobs = _campaign_jobs(config)
    stats.jobs = len(jobs) * config.rounds
    say(f"netchaos: {len(jobs)} seeded job(s) x {config.rounds} round(s)")
    baseline = _serial_baseline(jobs)
    say(f"netchaos: serial baseline over {len(baseline)} unique job(s)")

    with tempfile.TemporaryDirectory(dir=scratch_dir) as tmp:
        scratch = Path(tmp)
        cache_dir = str(scratch / "cache")

        def start(port=0, sever=0.0, crash=None) -> _ServerHandle:
            stats.restarts += 1
            return _ServerHandle(
                config, cache_dir, scratch,
                port=port, sever_rate=sever, crash_put_after=crash,
            )

        for round_index in range(config.rounds):
            kind = _ROUND_KINDS[round_index % len(_ROUND_KINDS)]
            say(f"netchaos: round {round_index + 1} ({kind})")
            server = start(
                sever=config.sever_rate if kind == "sever" else 0.0,
                crash=(
                    config.crash_put_after if kind == "crash-put" else None
                ),
            )
            client = NetworkServiceClient(
                "127.0.0.1", server.port,
                request_timeout=config.request_timeout,
                retry=RetryPolicy(
                    attempts=config.retry_attempts,
                    base_delay=0.05,
                    max_delay=0.4,
                    seed=config.seed + round_index,
                ),
            )
            try:
                tickets = [client.submit(job) for job in jobs]
                if kind == "kill9":
                    # jobs are in flight right now; no drain, no mercy
                    server.kill9()
                    stats.kills += 1
                    server = start(port=server.port)
                for ticket, job in zip(tickets, jobs):
                    result, server = _collect_ticket(
                        client, ticket, job, server, start, stats
                    )
                    _check_result(
                        result, job, baseline, stats, report, say
                    )
            finally:
                client.close()
                exit_status = server.drain()
                if exit_status == 0:
                    stats.drains += 1
                stats.client_attempts += client.attempts
                stats.retried_submissions += len(client.delays)

        # the cache directory must contain zero corrupt entries, no
        # matter how many processes died mid-write
        verify = DiskCache(cache_dir).verify()
        stats.corrupt_entries = len(verify.corrupt)
        report.corrupt_paths = [str(path) for path in verify.corrupt]
        say(
            f"netchaos: disk verify: {verify.entries} entr(ies), "
            f"{len(verify.corrupt)} corrupt, {len(verify.temp_files)} "
            f"stranded temp file(s)"
        )

        # warm restart: a fresh server on the same directory must serve
        # the whole campaign from the persistent tier
        server = start()
        client = NetworkServiceClient(
            "127.0.0.1", server.port,
            request_timeout=config.request_timeout,
            retry=RetryPolicy(attempts=config.retry_attempts),
        )
        try:
            for job in jobs:
                result = client._optimize_job(job)
                expected = baseline[job.cache_key()]
                if result.source != expected.source:
                    stats.mismatches += 1
                    report.mismatched_keys.append(job.cache_key())
            remote = client.stats
            disk = (remote.get("disk") or {})
            stats.warm_hits = int(disk.get("hits", 0))
            stats.warm_misses = int(disk.get("misses", 0))
        finally:
            client.close()
            if server.drain() == 0:
                stats.drains += 1
        served = stats.warm_hits + stats.warm_misses
        report.warm_hit_rate = (
            stats.warm_hits / served if served else 0.0
        )
        say(
            f"netchaos: warm restart: {stats.warm_hits}/{served} "
            f"disk-served"
        )

    return report


def _collect_ticket(client, ticket, job, server, start, stats):
    """Collect one ticket, restarting the server if chaos took it down.

    Returns ``(result, server)`` — the server handle may be a new
    process (same port) if the old one died mid-collection.
    """
    from repro.service.net.client import ServiceUnavailable

    for _ in range(4):
        try:
            return client.wait(ticket), server
        except ServiceUnavailable:
            # the server is gone (crash-put suicide or kill round
            # timing); note how it died, resurrect it on the same
            # port, and resubmit — idempotent under the cache key
            if server.alive():
                raise  # unreachable server that is alive: a real bug
            from repro.service.diskcache import CACHE_CRASH_EXIT

            if server.proc.returncode == CACHE_CRASH_EXIT:
                stats.crash_exits += 1
            elif server.proc.returncode != 0:
                stats.kills += 1
            server = start(port=server.port)
            ticket = client.submit(job)
    raise NetChaosError("server kept dying; campaign cannot converge")


def _check_result(result, job, baseline, stats, report, say) -> None:
    """One resolved job vs. the serial baseline (byte-identical)."""
    expected = baseline[job.cache_key()]
    if (
        result.status != "completed"
        or result.source != expected.source
    ):
        stats.mismatches += 1
        report.mismatched_keys.append(job.cache_key())
        say(
            f"netchaos: MISMATCH for {job.cache_key()[:12]}: "
            f"status={result.status}"
        )
    else:
        stats.resolved += 1
