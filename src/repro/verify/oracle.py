"""The semantic-equivalence oracle.

Runs the reference interpreter (:mod:`repro.ir.interp`) on an original
and a transformed program over a set of input environments and compares
what FORTRAN programs can observe: the ``write`` trace, and (optionally)
the final scalar/array stores.  The verdict is a structured
:class:`EquivalenceReport`; a divergence on *any* environment means the
transformation miscompiled the program.

Two comparison levels:

* **output trace** (always) — the behaviour the paper's dependence
  arguments promise to preserve;
* **final stores** (``compare_stores=True``) — stricter, and therefore
  opt-in: legitimate optimizations such as dead-code elimination and
  full loop unrolling change which dead values linger in the store, so
  store comparison is only meaningful for transformations that promise
  store preservation.  Stores are compared over the names common to
  both programs.

Runtime errors are part of behaviour: if one side raises
:class:`~repro.ir.interp.InterpError` and the other completes (or they
raise for different reasons at different points in the trace), that is
a divergence.  Both sides raising is treated as agreement — the
environment drove the *original* program into a runtime error, so no
conclusion about the transformation can be drawn from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ir.interp import ExecutionResult, InterpError, _normalize, run_program
from repro.ir.program import Program
from repro.verify.envgen import EnvironmentGenerator, InputEnvironment


class VerificationError(Exception):
    """An applied transformation changed observable behaviour.

    Raised by the driver's in-line ``verify`` gate; carries the full
    :class:`EquivalenceReport` for diagnosis.
    """

    def __init__(self, message: str, report: "EquivalenceReport"):
        super().__init__(message)
        self.report = report


@dataclass
class Divergence:
    """One observed behaviour difference on one environment."""

    env_label: str
    kind: str  # "output" | "error" | "scalars" | "arrays"
    detail: str
    environment: Optional[InputEnvironment] = None

    def __str__(self) -> str:
        return f"[{self.env_label}] {self.kind}: {self.detail}"


@dataclass
class EquivalenceReport:
    """The oracle's verdict over a whole environment set."""

    trials: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    #: environments on which both sides raised the same way (no signal)
    inconclusive: list[str] = field(default_factory=list)
    before_steps: int = 0
    after_steps: int = 0

    @property
    def equivalent(self) -> bool:
        return not self.divergences

    @property
    def conclusive_trials(self) -> int:
        return self.trials - len(self.inconclusive)

    def summary(self) -> str:
        if self.equivalent:
            note = (
                f" ({len(self.inconclusive)} inconclusive)"
                if self.inconclusive
                else ""
            )
            return f"equivalent on {self.conclusive_trials} environment(s){note}"
        lines = [
            f"DIVERGENT on {len(self.divergences)} of "
            f"{self.trials} environment(s):"
        ]
        lines.extend(f"  {divergence}" for divergence in self.divergences)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


@dataclass
class _Outcome:
    """One interpreter run: a result or a runtime error."""

    result: Optional[ExecutionResult] = None
    error: Optional[InterpError] = None


class EquivalenceOracle:
    """Differential executor for original/transformed program pairs."""

    def __init__(
        self,
        trials: int = 3,
        seed: int = 0,
        compare_stores: bool = False,
        max_steps: int = 2_000_000,
    ):
        self.trials = trials
        self.seed = seed
        self.compare_stores = compare_stores
        self.max_steps = max_steps
        self._envgen = EnvironmentGenerator(seed)

    # ------------------------------------------------------------------
    def check(
        self,
        before: Program,
        after: Program,
        environments: Optional[Sequence[InputEnvironment]] = None,
    ) -> EquivalenceReport:
        """Compare two programs over the environment set."""
        if environments is None:
            environments = self._envgen.environments(
                [before, after], trials=self.trials
            )
        report = EquivalenceReport(trials=len(environments))
        for env in environments:
            outcome_before = self._run(before, env)
            outcome_after = self._run(after, env)
            if outcome_before.result is not None:
                report.before_steps += outcome_before.result.steps
            if outcome_after.result is not None:
                report.after_steps += outcome_after.result.steps
            divergence = self._compare(env, outcome_before, outcome_after)
            if divergence is not None:
                report.divergences.append(divergence)
            elif outcome_before.error is not None:
                report.inconclusive.append(env.label)
        return report

    # ------------------------------------------------------------------
    def _run(self, program: Program, env: InputEnvironment) -> _Outcome:
        try:
            return _Outcome(
                result=run_program(
                    program,
                    inputs=env.inputs,
                    scalars=env.scalars,
                    arrays=env.arrays,
                    max_steps=self.max_steps,
                )
            )
        except InterpError as error:
            return _Outcome(error=error)

    def _compare(
        self,
        env: InputEnvironment,
        outcome_before: _Outcome,
        outcome_after: _Outcome,
    ) -> Optional[Divergence]:
        if outcome_before.error is not None or outcome_after.error is not None:
            if outcome_before.error is not None and (
                outcome_after.error is not None
            ):
                return None  # both errored: inconclusive, not divergent
            side = "original" if outcome_after.error else "transformed"
            error = outcome_before.error or outcome_after.error
            return Divergence(
                env_label=env.label,
                kind="error",
                detail=f"only the {side} program completed "
                f"(other side: {error})",
                environment=env,
            )
        result_before = outcome_before.result
        result_after = outcome_after.result
        assert result_before is not None and result_after is not None
        trace_before = result_before.observable()
        trace_after = result_after.observable()
        if trace_before != trace_after:
            return Divergence(
                env_label=env.label,
                kind="output",
                detail=_trace_diff(trace_before, trace_after),
                environment=env,
            )
        if self.compare_stores:
            store_diff = _store_diff(result_before, result_after)
            if store_diff is not None:
                kind, detail = store_diff
                return Divergence(
                    env_label=env.label,
                    kind=kind,
                    detail=detail,
                    environment=env,
                )
        return None


def _trace_diff(trace_before: tuple, trace_after: tuple) -> str:
    if len(trace_before) != len(trace_after):
        return (
            f"write-trace length {len(trace_before)} != {len(trace_after)}"
        )
    for position, (left, right) in enumerate(zip(trace_before, trace_after)):
        if left != right:
            return f"write[{position}]: {left!r} != {right!r}"
    return "traces differ"  # unreachable given the caller's check


def _store_diff(
    result_before: ExecutionResult, result_after: ExecutionResult
) -> Optional[tuple[str, str]]:
    """Compare final stores over names present on both sides."""
    for name in sorted(
        set(result_before.scalars) & set(result_after.scalars)
    ):
        left = _normalize(result_before.scalars[name])
        right = _normalize(result_after.scalars[name])
        if left != right:
            return "scalars", f"final {name} = {left!r} != {right!r}"
    for name in sorted(
        set(result_before.arrays) & set(result_after.arrays)
    ):
        cells_before = result_before.arrays[name]
        cells_after = result_after.arrays[name]
        for index in sorted(set(cells_before) & set(cells_after)):
            left = _normalize(cells_before[index])
            right = _normalize(cells_after[index])
            if left != right:
                subscript = ",".join(str(coord) for coord in index)
                return (
                    "arrays",
                    f"final {name}({subscript}) = {left!r} != {right!r}",
                )
    return None


def check_equivalence(
    before: Program,
    after: Program,
    trials: int = 3,
    seed: int = 0,
    compare_stores: bool = False,
) -> EquivalenceReport:
    """One-shot convenience wrapper around :class:`EquivalenceOracle`."""
    oracle = EquivalenceOracle(
        trials=trials, seed=seed, compare_stores=compare_stores
    )
    return oracle.check(before, after)
