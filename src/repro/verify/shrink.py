"""Counterexample minimization for oracle failures.

Given a program on which some transformation diverges, the shrinker
greedily deletes code while a caller-supplied predicate ("does the
divergence persist?") stays true.  Three reduction operators, tried
from coarsest to finest each round:

* delete a whole ``DO``/``ENDDO`` or ``IF``/``ELSE``/``ENDIF`` region;
* *unwrap* a region (drop the markers, keep the body) — turns loop
  bodies into straight-line code so the finer operator can bite;
* delete one non-structural statement.

Every candidate is a structurally valid program by construction
(regions are removed or unwrapped atomically), so the predicate never
sees torn IR.  The result is typically a handful of statements — small
enough to eyeball the miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.ir.interp import InterpError
from repro.ir.program import IRError, Program
from repro.ir.quad import LOOP_HEADS, Opcode, Quad
from repro.ir.validate import ValidationError

#: predicate: True while the candidate still exhibits the failure
Predicate = Callable[[Program], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    program: Program
    original_statements: int
    statements: int
    rounds: int
    attempts: int

    def __str__(self) -> str:
        return (
            f"shrunk {self.original_statements} -> {self.statements} "
            f"quad(s) in {self.rounds} round(s), {self.attempts} attempt(s)"
        )


def _rebuild(quads: list[Quad], name: str) -> Program:
    return Program(
        quads=(quad.copy() for quad in quads), name=name
    )


def _regions(quads: list[Quad]) -> list[tuple[int, int]]:
    """All (start, stop) index spans of DO/IF regions, outermost first."""
    spans: list[tuple[int, int]] = []
    stack: list[int] = []
    for position, quad in enumerate(quads):
        op = quad.opcode
        if op in LOOP_HEADS or op is Opcode.IF:
            stack.append(position)
        elif op in (Opcode.ENDDO, Opcode.ENDIF) and stack:
            spans.append((stack.pop(), position))
    spans.sort(key=lambda span: (span[0], -(span[1] - span[0])))
    return spans


def _candidates(quads: list[Quad], name: str) -> Iterator[Program]:
    """Candidate reductions, coarsest first."""
    spans = _regions(quads)
    spans_by_size = sorted(
        spans, key=lambda span: span[1] - span[0], reverse=True
    )
    # 1. whole-region deletion, biggest regions first
    for start, stop in spans_by_size:
        yield _rebuild(quads[:start] + quads[stop + 1:], name)
    # 2. region unwrapping (drop markers, keep the body)
    for start, stop in spans_by_size:
        markers = {start, stop}
        if quads[start].opcode is Opcode.IF:
            depth = 0
            for position in range(start, stop + 1):
                op = quads[position].opcode
                if op is Opcode.IF:
                    depth += 1
                elif op is Opcode.ENDIF:
                    depth -= 1
                elif op is Opcode.ELSE and depth == 1:
                    markers.add(position)
        kept = [
            quad
            for position, quad in enumerate(quads)
            if position not in markers
        ]
        yield _rebuild(kept, name)
    # 3. single-statement deletion
    for position, quad in enumerate(quads):
        if quad.is_structural():
            continue
        yield _rebuild(quads[:position] + quads[position + 1:], name)


def shrink_program(
    program: Program,
    still_fails: Predicate,
    max_attempts: int = 1000,
    name: Optional[str] = None,
) -> ShrinkResult:
    """Minimize ``program`` while ``still_fails`` holds.

    The input program itself must satisfy the predicate; the returned
    program always does.  Greedy first-improvement search with restart
    after every accepted reduction, bounded by ``max_attempts``
    predicate evaluations.
    """
    name = name or f"{program.name}_shrunk"
    current = list(program)
    original_statements = len(current)
    rounds = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        rounds += 1
        for candidate in _candidates(current, name):
            if len(candidate) >= len(current):
                continue
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failed = still_fails(candidate)
            except (InterpError, IRError, ValidationError):
                # a candidate the interpreter/IR machinery rejects is
                # not a repro; anything else is a real bug — propagate
                failed = False
            if failed:
                current = list(candidate)
                improved = True
                break
    return ShrinkResult(
        program=_rebuild(current, name),
        original_statements=original_statements,
        statements=len(current),
        rounds=rounds,
        attempts=attempts,
    )
