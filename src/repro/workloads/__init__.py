"""Workload programs: the HOMPACK/numerical-suite substitutes."""

from repro.workloads.programs import SOURCES
from repro.workloads.suite import Workload, full_suite, run_workload, workload

__all__ = ["SOURCES", "Workload", "full_suite", "run_workload", "workload"]
