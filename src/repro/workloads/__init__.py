"""Workload programs: the HOMPACK/numerical-suite substitutes."""

from repro.workloads.programs import SOURCES
from repro.workloads.scale import ScaleGenerator, bulk_alloc, large_program
from repro.workloads.suite import Workload, full_suite, run_workload, workload

__all__ = [
    "SOURCES",
    "ScaleGenerator",
    "Workload",
    "bulk_alloc",
    "full_suite",
    "large_program",
    "run_workload",
    "workload",
]
