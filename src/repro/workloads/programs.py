"""The workload programs (substitute for HOMPACK + numerical suite).

The paper evaluates on ten FORTRAN programs: HOMPACK routines (solving
non-linear equations by the homotopy method) and a numerical-analysis
test suite (FFT, Newton's method, ...).  Those sources are not
available, so this module provides ten mini-Fortran programs written in
the same idiom — constant setup code feeding loop bounds, dense-array
DO loops, scalar recurrences, predictor-corrector steps — sized so the
paper's applicability *shape* reproduces:

* CTP is by far the most frequently applicable optimization and its
  points enable DCE, CFO and (through constant loop bounds) LUR;
* ICM finds no points (numerical FORTRAN keeps invariants out of
  loops and the IR carries no address arithmetic);
* CPP applies in exactly two programs (NEWTON and TRACK) and enables
  nothing;
* FUS applies in one test case (the ORDERING program);
* the ORDERING program exhibits the FUS/INX/LUR interactions of the
  ordering experiment (E4).
"""

from __future__ import annotations

NEWTON = """
program newton
  ! Newton's method for f(x) = x**3 - 2x - 5 (Burden & Faires flavour)
  integer k, maxit
  real x, x0, fx, dfx, tol, err
  maxit = 12
  tol = 0.000001
  read x
  err = 1.0
  do k = 1, maxit
    x0 = x
    fx = x0 * x0 * x0 - 2.0 * x0 - 5.0
    dfx = 3.0 * x0 * x0 - 2.0
    x = x0 - fx / dfx
    err = abs(x - x0)
    if (err < tol) then
      write x
    end if
  end do
  write x
  write err
end
"""

FFT = """
program fft
  ! one radix-2 butterfly stage over n points (numerical suite)
  integer i, k, n, half
  real xr(64), xi(64), yr(64), yi(64)
  real wr, wi, ang, pi, twopi, tr, ti
  n = 16
  pi = 3.14159265
  twopi = 2.0 * pi
  half = n / 2
  do i = 1, n
    read xr(i)
  end do
  do k = 1, n
    xi(k) = 0.0
  end do
  do k = 1, half
    ang = twopi * k / n
    wr = cos(ang)
    wi = 0.0 - sin(ang)
    tr = wr * xr(k + half) - wi * xi(k + half)
    ti = wr * xi(k + half) + wi * xr(k + half)
    yr(k) = xr(k) + tr
    yi(k) = xi(k) + ti
    yr(k + half) = xr(k) - tr
    yi(k + half) = xi(k) - ti
  end do
  do k = 1, n
    write yr(k)
    write yi(k)
  end do
end
"""

GAUSS = """
program gauss
  ! Gaussian elimination without pivoting on an n x n system
  integer i, j, k, n
  real a(12,12), b(12), x(12), factor, sum
  n = 6
  do i = 1, n
    do j = 1, n
      read a(i,j)
    end do
  end do
  do k = 1, n
    read b(k)
  end do
  do k = 1, n - 1
    do i = k + 1, n
      factor = a(i,k) / a(k,k)
      do j = k, n
        a(i,j) = a(i,j) - factor * a(k,j)
      end do
      b(i) = b(i) - factor * b(k)
    end do
  end do
  do i = 1, n
    x(i) = b(i)
  end do
  do k = 1, n
    write x(k)
  end do
end
"""

TRACK = """
program track
  ! homotopy path tracking: predictor-corrector steps (HOMPACK flavour)
  integer step, nsteps, j, m
  real t, dt, lambda, mu, x, xold, fx, hx, corr
  nsteps = 10
  m = 4
  dt = 0.1
  t = 0.0
  read x
  do step = 1, nsteps
    t = t + dt
    lambda = t
    xold = x
    mu = 1.0 - lambda
    fx = xold * xold - 3.0 * xold + 1.0
    hx = lambda * fx + mu * (xold - 1.0)
    x = xold - 0.5 * hx
    do j = 1, m
      corr = lambda * (x * x - 3.0 * x + 1.0) + mu * (x - 1.0)
      x = x - 0.25 * corr
    end do
  end do
  write x
  write t
end
"""

JACOBIAN = """
program jacobian
  ! dense Jacobian evaluation by forward differences (HOMPACK flavour)
  integer i, j, k, n
  real jac(10,10), f0(10), f1(10), xx(10), t3(8,8,8), g(10,10), h
  n = 8
  h = 0.0001
  do k = 1, n
    read xx(k)
  end do
  do i = 1, n
    f0(i) = xx(i) * xx(i) - xx(i)
  end do
  do j = 1, n
    do i = 1, n
      f1(i) = (xx(i) + h) * (xx(i) + h) - (xx(i) + h)
      jac(i,j) = (f1(i) - f0(i)) / h
    end do
  end do
  do i = 1, n
    do j = 1, n
      do k = 1, n
        t3(i,j,k) = t3(i,j,k) * 0.5
      end do
    end do
  end do
  ! column relaxation: carried in i, independent in j — the loop pair
  ! interchange turns into an outer parallel loop
  do i = 2, n
    do j = 1, n
      g(i,j) = g(i-1,j) * 0.9
    end do
  end do
  do i = 1, n
    write jac(i,i)
  end do
  write t3(1,2,3)
  write g(3,3)
end
"""

SOLVE = """
program solve
  ! forward elimination + back substitution (HOMPACK linear algebra)
  integer i, j, k, n
  real l(10,10), u(10,10), b(10), y(10), z(10), acc
  n = 6
  do i = 1, n
    read b(i)
  end do
  do k = 1, n
    do j = 1, n
      read l(k,j)
    end do
  end do
  do i = 1, n
    acc = b(i)
    do j = 1, i - 1
      acc = acc - l(i,j) * y(j)
    end do
    y(i) = acc / l(i,i)
  end do
  do i = 1, n
    z(i) = y(n + 1 - i)
  end do
  do k = 1, n
    write z(k)
  end do
end
"""

POLY = """
program poly
  ! polynomial evaluation at many points (Horner), unrollable degree
  integer i, j, k, deg, npts
  real coef(8), pts(32), val(32), p
  deg = 5
  npts = 12
  do k = 1, deg
    read coef(k)
  end do
  do j = 1, npts
    read pts(j)
  end do
  do i = 1, npts
    p = coef(1)
    do k = 2, deg
      p = p * pts(i) + coef(k)
    end do
    val(i) = p
  end do
  do j = 1, npts
    write val(j)
  end do
end
"""

INTEGRATE = """
program integrate
  ! composite trapezoid rule for exp(-x*x) on [0, 1]
  integer i, n
  real h, s, x, fx, a, b
  n = 10
  a = 0.0
  b = 1.0
  h = (b - a) / n
  s = 0.0
  do i = 1, n - 1
    x = a + i * h
    fx = exp(0.0 - x * x)
    s = s + fx
  end do
  s = 2.0 * s + 1.0 + exp(0.0 - b * b)
  s = s * h / 2.0
  write s
end
"""

TRIDIAG = """
program tridiag
  ! Thomas algorithm: scalar recurrences that must stay sequential
  integer i, k, n
  real sub(16), diag(16), sup(16), rhs(16), cp(16), dp(16), x(16), m
  n = 8
  do i = 1, n
    read diag(i)
  end do
  do k = 1, n
    read rhs(k)
  end do
  do i = 1, n
    sub(i) = 1.0
  end do
  do k = 1, n
    sup(k) = 1.0
  end do
  cp(1) = sup(1) / diag(1)
  dp(1) = rhs(1) / diag(1)
  do i = 2, n
    m = diag(i) - sub(i) * cp(i-1)
    cp(i) = sup(i) / m
    dp(i) = (rhs(i) - sub(i) * dp(i-1)) / m
  end do
  x(n) = dp(n)
  do i = 1, n
    write dp(i)
  end do
end
"""

ORDERING = """
program ordering
  ! the ordering-experiment program: FUS, INX and LUR all apply and
  ! interact differently in its two segments
  integer i, j, k, n, m, small
  real a(12,12), b(12,12), c(12), d(12), e(12,12), w(12)
  n = 8
  m = 6
  small = 4
  ! --- segment 1: FUS(L1,L2) disables INX(L2,L3); INX(L2,L3) first
  !     makes the outer loop control variable j, disabling FUS
  do i = 1, n
    c(i) = 0.0
  end do
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j) + b(j,i)
    end do
  end do
  ! --- a small constant loop: LUR applies (and, applied to L4's
  !     sibling below, removes the loop FUS would need)
  do k = 1, small
    w(k) = k * 1.0
  end do
  ! --- segment 2: INX(L6,L7) makes the outer loop run over j,
  !     *enabling* FUS with L5 (same lcv and bounds)
  do j = 1, m
    d(j) = d(j) * 2.0
  end do
  do i = 1, m
    do j = 1, m
      e(j,i) = e(j,i) + d(j)
    end do
  end do
  write c(1)
  write a(2,3)
  write w(2)
  write d(3)
  write e(4,5)
end
"""


#: name -> source for the full ten-program suite.
SOURCES: dict[str, str] = {
    "newton": NEWTON,
    "fft": FFT,
    "gauss": GAUSS,
    "track": TRACK,
    "jacobian": JACOBIAN,
    "solve": SOLVE,
    "poly": POLY,
    "integrate": INTEGRATE,
    "tridiag": TRIDIAG,
    "ordering": ORDERING,
}
