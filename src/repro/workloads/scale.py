"""Large-program generation: 10^5–10^6-quad HOMPACK-flavoured kernels.

The paper's evaluation corpus (HOMPACK and friends) is dense numerical
FORTRAN: daxpy/ddot sweeps, row-by-row matrix-vector products, norm
reductions, Horner polynomial evaluation, stencils, and pivoting
conditionals, repeated across many subroutines.  This module emits
deterministic programs with exactly that shape at whatever quad count
the caller asks for — the scaling workload behind
``benchmarks/test_bench_ir.py`` and any other consumer that needs a
realistic million-quad :class:`~repro.ir.program.Program` rather than
the ~700-quad ceiling of the hand-written suite.

Name pools scale with the requested size, the way a real corpus's do:
a million-quad FORTRAN suite is thousands of subroutines with their
own locals, not one subroutine reusing six arrays a hundred thousand
times.  Keeping the per-name access counts bounded is what keeps
dependence analysis (which tests array-access *pairs* per name) and
the dependence graph itself near-linear in program size — reusing a
tiny pool would make any analysis quadratic no matter how the IR
container scales.  Arrays and scalars are initialized lazily, right
before their first kernel, so defined-before-use holds everywhere and
the programs interpret, not just analyze.

Programs are built kernel by kernel until the target size is reached:
every kernel is a self-contained loop nest (depth ≤ 3) over constant
bounds, and the whole program passes ``check_structure``.  For a given
``(seed, target_quads)`` the output is identical across runs and
platforms.

Generation allocates millions of small objects; :func:`bulk_alloc`
pauses the cyclic GC around the build (none of these objects form
cycles), which roughly triples throughput at the 10^6 scale.
"""

from __future__ import annotations

import contextlib
import gc
import random
from typing import Iterator

from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.types import Affine, Const, Var

#: Every array is this long; loop bounds stay inside it so the
#: programs remain interpretable, not just analyzable.
ARRAY_SIZE = 48

#: One array name per this many requested quads (a few kernels share
#: an array on average, bounding per-name access counts — and with
#: them the per-name access-pair tests dependence analysis performs).
_QUADS_PER_ARRAY = 60

#: One scalar accumulator/coefficient name per this many quads.
_QUADS_PER_SCALAR = 120

#: One loop-variable name per this many quads (FORTRAN reuses ``i``
#: liberally, but a million-quad corpus still spells thousands of
#: distinct control variables across its subroutines).
_QUADS_PER_LOOP_VAR = 400


@contextlib.contextmanager
def bulk_alloc() -> Iterator[None]:
    """Pause the cyclic GC for a burst of small-object allocation.

    Quads and operands are acyclic, so the collector finds nothing —
    it only pays threshold-triggered scans that grow with the heap.
    Re-enables (and collects once) on exit even on error; a no-op
    when the collector was already disabled by the caller.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


class ScaleGenerator:
    """Emits one deterministic HOMPACK-flavoured program per instance."""

    def __init__(self, seed: int, target_quads: int, name: str | None = None):
        if target_quads < 1:
            raise ValueError("target_quads must be >= 1")
        self.rng = random.Random(seed)
        self.target = target_quads
        self.builder = IRBuilder(name=name or f"hompack_{seed}_{target_quads}")
        self.arrays = tuple(
            f"a{index}"
            for index in range(max(6, target_quads // _QUADS_PER_ARRAY))
        )
        self.scalars = tuple(
            f"s{index}"
            for index in range(max(8, target_quads // _QUADS_PER_SCALAR))
        )
        self.loop_vars = tuple(
            f"i{index}"
            for index in range(max(3, target_quads // _QUADS_PER_LOOP_VAR))
        )
        self._ready_arrays: set[str] = set()
        self._ready_scalars: set[str] = set()
        self._kernels = (
            self._daxpy,
            self._ddot,
            self._matvec_row,
            self._norm,
            self._scale_vector,
            self._stencil,
            self._horner,
            self._masked_reduce,
            self._loop_pair,
        )

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        with bulk_alloc():
            while len(self.builder) < self.target:
                kernel = self.rng.choice(self._kernels)
                kernel()
            for name in self.rng.sample(
                sorted(self._ready_scalars), min(3, len(self._ready_scalars))
            ):
                self.builder.write(name)
        return self.builder.build()

    # ------------------------------------------------------------------
    # name management (lazy defined-before-use initialization)
    # ------------------------------------------------------------------
    def _arrays_for_kernel(self, count: int) -> list[str]:
        chosen = self.rng.sample(self.arrays, count)
        for array in chosen:
            if array not in self._ready_arrays:
                self._ready_arrays.add(array)
                var = self._loop_var()
                with self.builder.loop(var, 1, ARRAY_SIZE):
                    self.builder.assign(
                        self.builder.arr(array, var), self.rng.randint(0, 7)
                    )
        return chosen

    def _scalar(self) -> str:
        name = self.rng.choice(self.scalars)
        if name not in self._ready_scalars:
            self._ready_scalars.add(name)
            self.builder.assign(name, self.rng.randint(1, 9))
        return name

    def _loop_var(self) -> str:
        return self.rng.choice(self.loop_vars)

    def _bounds(self) -> tuple[int, int]:
        low = self.rng.randint(1, 3)
        high = self.rng.randint(low + 4, ARRAY_SIZE - 1)
        return low, high

    # ------------------------------------------------------------------
    # kernels (each one loop nest, HOMPACK's inner-loop vocabulary)
    # ------------------------------------------------------------------
    def _daxpy(self) -> None:
        """``y := y + a*x`` — the workhorse update."""
        builder = self.builder
        x, y = self._arrays_for_kernel(2)
        a = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        with builder.loop(var, low, high):
            t = builder.temp()
            builder.binary(t, a, "*", builder.arr(x, var))
            builder.binary(
                builder.arr(y, var), builder.arr(y, var), "+", t
            )

    def _ddot(self) -> None:
        """``s := sum(x[i]*y[i])`` — inner product reduction."""
        builder = self.builder
        x, y = self._arrays_for_kernel(2)
        s = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        builder.assign(s, 0)
        with builder.loop(var, low, high):
            t = builder.temp()
            builder.binary(
                t, builder.arr(x, var), "*", builder.arr(y, var)
            )
            builder.binary(s, s, "+", t)

    def _matvec_row(self) -> None:
        """Row-sweep matrix-vector product (depth-2 nest)."""
        builder = self.builder
        a, x, y = self._arrays_for_kernel(3)
        low, high = self._bounds()
        outer = self._loop_var()
        inner = self._loop_var()
        while inner == outer:
            inner = self._loop_var()
        inner_low = self.rng.randint(1, 2)
        inner_high = self.rng.randint(inner_low + 3, ARRAY_SIZE // 2)
        with builder.loop(outer, low, high):
            s = builder.temp()
            builder.assign(s, 0)
            with builder.loop(inner, inner_low, inner_high):
                t = builder.temp()
                builder.binary(
                    t, builder.arr(a, inner), "*", builder.arr(x, inner)
                )
                builder.binary(s, s, "+", t)
            builder.assign(builder.arr(y, outer), s)

    def _norm(self) -> None:
        """``r := sqrt(sum(x[i]^2))`` — the step-length computation."""
        builder = self.builder
        (x,) = self._arrays_for_kernel(1)
        s = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        builder.assign(s, 0)
        with builder.loop(var, low, high):
            t = builder.temp()
            builder.binary(
                t, builder.arr(x, var), "*", builder.arr(x, var)
            )
            builder.binary(s, s, "+", t)
        builder.unary(self._scalar(), "sqrt", s)

    def _scale_vector(self) -> None:
        """``x := c*x`` — rescaling after a pivot."""
        builder = self.builder
        (x,) = self._arrays_for_kernel(1)
        c = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        with builder.loop(var, low, high):
            builder.binary(
                builder.arr(x, var), c, "*", builder.arr(x, var)
            )

    def _stencil(self) -> None:
        """Three-point stencil ``v[i] := u[i-1] + u[i+1] - u[i]``."""
        builder = self.builder
        u, v = self._arrays_for_kernel(2)
        low = self.rng.randint(2, 4)
        high = self.rng.randint(low + 4, ARRAY_SIZE - 2)
        var = self._loop_var()
        with builder.loop(var, low, high):
            t = builder.temp()
            builder.binary(
                t,
                builder.arr(u, Affine.of(-1, **{var: 1})),
                "+",
                builder.arr(u, Affine.of(1, **{var: 1})),
            )
            builder.binary(
                builder.arr(v, var), t, "-", builder.arr(u, var)
            )

    def _horner(self) -> None:
        """Straight-line Horner polynomial evaluation."""
        builder = self.builder
        p = self._scalar()
        x = self._scalar()
        builder.assign(p, self.rng.randint(1, 5))
        for _ in range(self.rng.randint(2, 6)):
            t = builder.temp()
            builder.binary(t, p, "*", x)
            builder.binary(p, t, "+", Const(self.rng.randint(-3, 7)))

    def _masked_reduce(self) -> None:
        """Conditional accumulation — the pivoting pattern."""
        builder = self.builder
        (x,) = self._arrays_for_kernel(1)
        s = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        builder.assign(s, 0)
        with builder.loop(var, low, high):
            with builder.if_(Var(var), self.rng.choice(("<", "<=", ">")),
                             Const(self.rng.randint(2, ARRAY_SIZE - 2))):
                builder.binary(s, s, "+", builder.arr(x, var))

    def _loop_pair(self) -> None:
        """Two adjacent same-bounds loops (the fusion candidate)."""
        builder = self.builder
        x, y = self._arrays_for_kernel(2)
        c = self._scalar()
        low, high = self._bounds()
        var = self._loop_var()
        with builder.loop(var, low, high):
            builder.binary(
                builder.arr(x, var), builder.arr(x, var), "+", c
            )
        with builder.loop(var, low, high):
            builder.binary(
                builder.arr(y, var), builder.arr(y, var), "*", c
            )


def large_program(
    seed: int = 0, target_quads: int = 100_000, name: str | None = None
) -> Program:
    """One deterministic HOMPACK-flavoured program of ≥ ``target_quads``
    quads (the last kernel may overshoot by a few statements)."""
    return ScaleGenerator(seed, target_quads, name=name).generate()
