"""Loading and executing the workload suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.frontend.lower import parse_program
from repro.ir.interp import run_program
from repro.ir.program import Program
from repro.ir.types import Number
from repro.workloads.programs import SOURCES


@dataclass(frozen=True)
class Workload:
    """One suite program plus inputs that exercise it."""

    name: str
    source: str
    inputs: tuple[Number, ...] = ()

    def load(self) -> Program:
        """Parse and lower a fresh copy of the program."""
        return parse_program(self.source)


#: Inputs per program: enough values for every ``read`` it performs.
_INPUTS: dict[str, tuple[Number, ...]] = {
    "newton": (2.0,),
    "fft": tuple(float((i * 7) % 5 - 2) for i in range(16)),
    "gauss": tuple(
        [4.0 if i % 7 == 0 else 1.0 + (i % 3) for i in range(36)]
        + [float(1 + i % 4) for i in range(6)]
    ),
    "track": (0.5,),
    "jacobian": tuple(0.5 + 0.25 * i for i in range(8)),
    "solve": tuple(
        [float(1 + i % 3) for i in range(6)]
        + [5.0 if i % 7 == 0 else 0.5 for i in range(36)]
    ),
    "poly": tuple(
        [1.0, -2.0, 0.5, 3.0, -1.0] + [0.1 * i - 0.5 for i in range(12)]
    ),
    "integrate": (),
    "tridiag": tuple(
        [4.0] * 8 + [float(i + 1) for i in range(8)]
    ),
    "ordering": (),
}


def workload(name: str) -> Workload:
    """One workload by name."""
    try:
        source = SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; suite has {sorted(SOURCES)}"
        ) from None
    return Workload(name=name, source=source, inputs=_INPUTS.get(name, ()))


def full_suite(names: Optional[Sequence[str]] = None) -> list[Workload]:
    """The whole ten-program suite (or a named subset), in suite order."""
    selected = names if names is not None else list(SOURCES)
    return [workload(name) for name in selected]


def run_workload(item: Workload, program: Optional[Program] = None):
    """Execute a workload (optionally a transformed copy) on its inputs."""
    target = program if program is not None else item.load()
    return run_program(target, inputs=item.inputs)
