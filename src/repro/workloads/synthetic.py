"""Random structured-program generation for property-based testing.

Produces small, always-terminating programs in the quad IR: straight-
line arithmetic over initialized scalars and arrays, constant-bound
loops, and two-way conditionals.  Every scalar is assigned before the
first statement that could read it, so optimizations that assume
defined-before-use (CTP, CPP — the standard FORTRAN assumption) are
exercised on their home turf.

The generator is deterministic for a given seed; hypothesis drives the
seed and size.
"""

from __future__ import annotations

import random
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.types import Affine, ArrayRef, Const, Var

#: scalar pool; every one is initialized in the preamble
SCALARS = ("u", "v", "w", "x", "y", "z")
#: array pool (one-dimensional, size 12)
ARRAYS = ("p", "q", "r")
ARRAY_SIZE = 12
LOOP_VARS = ("i", "j", "k")
BINOPS = ("+", "-", "*")


class ProgramGenerator:
    """Generates one random program per instance."""

    def __init__(self, seed: int, size: int = 12, max_depth: int = 2):
        self.rng = random.Random(seed)
        self.size = max(1, size)
        self.max_depth = max_depth
        self.builder = IRBuilder(name=f"synthetic_{seed}")

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        builder = self.builder
        for name in SCALARS:
            builder.assign(name, self.rng.randint(-4, 9))
        for array in ARRAYS:
            with builder.loop("i", 1, ARRAY_SIZE):
                builder.assign(
                    builder.arr(array, "i"), self.rng.randint(0, 5)
                )
        self._emit_block(self.size, depth=0, loop_vars=[])
        for name in self.rng.sample(SCALARS, 3):
            builder.write(name)
        builder.write(self.builder.arr(ARRAYS[0], 2))
        return builder.build()

    # ------------------------------------------------------------------
    def _emit_block(self, budget: int, depth: int, loop_vars: list[str]) -> None:
        while budget > 0:
            roll = self.rng.random()
            if roll < 0.55 or depth >= self.max_depth:
                self._emit_assignment(loop_vars)
                budget -= 1
            elif roll < 0.8:
                budget -= self._emit_loop(budget, depth, loop_vars)
            else:
                budget -= self._emit_conditional(budget, depth, loop_vars)

    def _emit_assignment(self, loop_vars: list[str]) -> None:
        builder = self.builder
        target_is_array = loop_vars and self.rng.random() < 0.4
        if target_is_array:
            target = self._array_ref(loop_vars)
        else:
            target = self.rng.choice(SCALARS)
        shape = self.rng.random()
        if shape < 0.25:
            builder.assign(target, self._operand(loop_vars))
        else:
            builder.binary(
                target,
                self._operand(loop_vars),
                self.rng.choice(BINOPS),
                self._operand(loop_vars),
            )

    def _operand(self, loop_vars: list[str]):
        roll = self.rng.random()
        if roll < 0.35:
            return Const(self.rng.randint(-3, 7))
        if roll < 0.75 or not loop_vars:
            pool = SCALARS + tuple(loop_vars)
            return Var(self.rng.choice(pool))
        return self._array_ref(loop_vars)

    def _array_ref(self, loop_vars: list[str]) -> ArrayRef:
        array = self.rng.choice(ARRAYS)
        var = self.rng.choice(loop_vars)
        offset = self.rng.choice((-1, 0, 0, 0, 1))
        subscript = Affine.of(offset, **{var: 1})
        return ArrayRef(array, (subscript,))

    def _emit_loop(self, budget: int, depth: int, loop_vars: list[str]) -> int:
        builder = self.builder
        available = [v for v in LOOP_VARS if v not in loop_vars]
        if not available or budget < 2:
            self._emit_assignment(loop_vars)
            return 1
        var = available[0]
        start = self.rng.randint(1, 3)
        stop = self.rng.randint(start, min(start + 6, ARRAY_SIZE - 1))
        inner_budget = min(budget - 1, self.rng.randint(1, 4))
        with builder.loop(var, start, stop):
            self._emit_block(inner_budget, depth + 1, loop_vars + [var])
        return inner_budget + 1

    def _emit_conditional(
        self, budget: int, depth: int, loop_vars: list[str]
    ) -> int:
        builder = self.builder
        if budget < 2:
            self._emit_assignment(loop_vars)
            return 1
        relop = self.rng.choice(("<", "<=", ">", ">=", "==", "!="))
        left = self.rng.choice(SCALARS + tuple(loop_vars))
        right = Const(self.rng.randint(-2, 6))
        inner_budget = min(budget - 1, self.rng.randint(1, 3))
        if self.rng.random() < 0.5:
            with builder.if_(left, relop, right):
                self._emit_block(inner_budget, depth + 1, loop_vars)
            return inner_budget + 1
        with builder.if_else(left, relop, right) as (_guard, orelse):
            self._emit_block(max(1, inner_budget // 2), depth + 1, loop_vars)
            orelse.begin()
            self._emit_block(max(1, inner_budget - inner_budget // 2),
                             depth + 1, loop_vars)
        return inner_budget + 1


def random_program(
    seed: int, size: int = 12, max_depth: int = 2
) -> Program:
    """Generate one deterministic random program."""
    return ProgramGenerator(seed, size=size, max_depth=max_depth).generate()
