"""Unit tests for the statement-level CFG."""

from repro.analysis.cfg import build_cfg
from repro.ir.builder import IRBuilder


def test_straight_line_chains():
    b = IRBuilder()
    b.assign("x", 1)
    b.assign("y", 2)
    cfg = build_cfg(b.build())
    assert cfg.successors(0) == [1]
    assert cfg.successors(1) == [2]  # virtual exit
    assert cfg.exit == 2


def test_loop_edges():
    b = IRBuilder()
    with b.loop("i", 1, 5):
        b.assign("x", "i")
    cfg = build_cfg(b.build())
    # DO at 0, body at 1, ENDDO at 2
    assert sorted(cfg.successors(0)) == [1, 3]  # body + zero-trip skip
    assert sorted(cfg.successors(2)) == [0, 3]  # back edge + exit
    assert (2, 0) in cfg.back_edges
    assert cfg.enddo_of[0] == 2


def test_forward_views_exclude_back_edges():
    b = IRBuilder()
    with b.loop("i", 1, 5):
        b.assign("x", "i")
    cfg = build_cfg(b.build())
    assert cfg.forward_successors(2) == [3]
    assert 2 not in cfg.forward_predecessors(0)


def test_if_without_else():
    b = IRBuilder()
    with b.if_("x", ">", 0):
        b.assign("y", 1)
    cfg = build_cfg(b.build())
    # IF at 0, then at 1, ENDIF at 2
    assert sorted(cfg.successors(0)) == [1, 2]
    assert cfg.successors(1) == [2]


def test_if_with_else():
    b = IRBuilder()
    with b.if_else("x", ">", 0) as (_g, orelse):
        b.assign("y", 1)
        orelse.begin()
        b.assign("y", 2)
    cfg = build_cfg(b.build())
    # IF=0 then=1 ELSE=2 else-body=3 ENDIF=4
    assert sorted(cfg.successors(0)) == [1, 3]
    assert cfg.successors(2) == [4]  # end of THEN jumps past the else
    assert cfg.successors(3) == [4]


def test_nested_loop_back_edges():
    b = IRBuilder()
    with b.loop("i", 1, 3):
        with b.loop("j", 1, 3):
            b.assign("x", 1)
    cfg = build_cfg(b.build())
    assert (3, 1) in cfg.back_edges  # inner ENDDO -> inner DO
    assert (4, 0) in cfg.back_edges  # outer ENDDO -> outer DO


def test_every_node_reaches_exit_in_structured_code():
    b = IRBuilder()
    b.assign("s", 0)
    with b.loop("i", 1, 3):
        with b.if_("s", "<", 10):
            b.binary("s", "s", "+", "i")
    cfg = build_cfg(b.build())
    # BFS forward from entry covers all nodes
    seen = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        node = frontier.pop()
        for succ in cfg.successors(node) if node < len(cfg.succs) else []:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    assert seen == set(range(cfg.node_count()))
