"""Unit tests for the generic bit-vector dataflow solver."""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import bits_to_indices, solve_backward, solve_forward
from repro.ir.builder import IRBuilder


def two_defs_program():
    """x := 1 ; x := 2 ; y := x"""
    b = IRBuilder()
    b.assign("x", 1)
    b.assign("x", 2)
    b.assign("y", "x")
    return b.build()


def test_forward_kill_semantics():
    program = two_defs_program()
    cfg = build_cfg(program)
    gen = [0b001, 0b010, 0b100]
    kill = [0b010, 0b001, 0b000]
    result = solve_forward(cfg, gen, kill)
    assert result.in_bits(2) == 0b010  # only the second x-def reaches


def test_forward_union_at_merge():
    b = IRBuilder()
    with b.if_else("c", ">", 0) as (_g, orelse):
        b.assign("x", 1)  # position 1
        orelse.begin()
        b.assign("x", 2)  # position 3
    b.assign("y", "x")  # position 5
    cfg = build_cfg(b.build())
    gen = [0, 0b01, 0, 0b10, 0, 0]
    kill = [0, 0b10, 0, 0b01, 0, 0]
    result = solve_forward(cfg, gen, kill)
    assert result.in_bits(5) == 0b11  # both defs reach the merge


def test_acyclic_drops_back_edge_flow():
    b = IRBuilder()
    with b.loop("i", 1, 3):
        b.assign("x", 1)  # position 1
    b.assign("y", "x")
    cfg = build_cfg(b.build())
    gen = [0, 1, 0, 0]
    kill = [0, 0, 0, 0]
    full = solve_forward(cfg, gen, kill)
    acyclic = solve_forward(cfg, gen, kill, acyclic=True)
    # the def reaches its own entry only around the back edge
    assert full.in_bits(1) == 1
    assert acyclic.in_bits(1) == 0


def test_entry_bits_seed_the_entry():
    program = two_defs_program()
    cfg = build_cfg(program)
    gen = [0, 0, 0]
    kill = [0b1, 0, 0]
    result = solve_forward(cfg, gen, kill, entry_bits=0b1)
    assert result.in_bits(0) == 0b1
    assert result.in_bits(1) == 0  # killed at position 0


def test_backward_liveness_shape():
    program = two_defs_program()
    cfg = build_cfg(program)
    # bit 0 = x used; defs of x kill it
    gen = [0, 0, 0b1]
    kill = [0b1, 0b1, 0]
    result = solve_backward(cfg, gen, kill)
    assert result.in_bits(2) == 0b1
    assert result.in_bits(1) == 0
    assert result.out_bits(1) == 0b1


def test_bits_to_indices():
    assert bits_to_indices(0) == []
    assert bits_to_indices(0b1011) == [0, 1, 3]
