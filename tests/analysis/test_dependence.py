"""Unit tests for whole-program dependence computation."""

from repro.analysis.dependence import compute_dependences
from repro.frontend.lower import parse_program
from repro.ir.builder import IRBuilder


def deps_of(source):
    program = parse_program(source)
    return program, compute_dependences(program)


def edges(graph, kind, **kw):
    return graph.query(kind, **kw)


class TestScalarFlow:
    def test_straight_line_flow(self):
        b = IRBuilder()
        d = b.assign("x", 1)
        u = b.assign("y", "x")
        graph = compute_dependences(b.build())
        found = edges(graph, "flow", src=d.qid, dst=u.qid)
        assert len(found) == 1
        assert found[0].var == "x"
        assert found[0].vector == ()
        assert found[0].dst_pos == "a"

    def test_killed_def_no_flow(self):
        b = IRBuilder()
        dead = b.assign("x", 1)
        b.assign("x", 2)
        use = b.assign("y", "x")
        graph = compute_dependences(b.build())
        assert not edges(graph, "flow", src=dead.qid, dst=use.qid)

    def test_accumulation_self_flow_carried(self):
        b = IRBuilder()
        with b.loop("i", 1, 5):
            s = b.binary("s", "s", "+", 1)
        graph = compute_dependences(b.build())
        self_edges = edges(graph, "flow", src=s.qid, dst=s.qid)
        assert any(e.vector == ("<",) for e in self_edges)

    def test_iteration_local_temp_not_carried(self):
        b = IRBuilder()
        with b.loop("i", 1, 5):
            t = b.binary("t", "i", "*", 2)
            u = b.assign("x", "t")
        graph = compute_dependences(b.build())
        found = edges(graph, "flow", src=t.qid, dst=u.qid)
        assert [e.vector for e in found] == [("=",)]

    def test_loop_head_flow_to_body_use(self):
        b = IRBuilder()
        with b.loop("i", 1, 5) as head:
            use = b.assign("x", "i")
        graph = compute_dependences(b.build())
        assert edges(graph, "flow", src=head.qid, dst=use.qid)

    def test_flow_into_loop_bound(self):
        program, graph = deps_of(
            """
            program t
              integer i, n
              real a(10)
              n = 5
              do i = 1, n
                a(i) = 1.0
              end do
              write a(2)
            end
            """
        )
        n_def = program[0].qid
        head = program[1].qid
        assert edges(graph, "flow", src=n_def, dst=head)


class TestAntiAndOutput:
    def test_anti_dependence(self):
        b = IRBuilder()
        use = b.assign("y", "x")
        redef = b.assign("x", 2)
        graph = compute_dependences(b.build())
        found = edges(graph, "anti", src=use.qid, dst=redef.qid)
        assert len(found) == 1
        assert found[0].var == "x"

    def test_output_dependence(self):
        b = IRBuilder()
        first = b.assign("x", 1)
        with b.if_("c", ">", 0):
            second = b.assign("x", 2)
        graph = compute_dependences(b.build())
        assert edges(graph, "out", src=first.qid, dst=second.qid)

    def test_no_out_dep_through_kill(self):
        b = IRBuilder()
        first = b.assign("x", 1)
        b.assign("x", 2)
        third = b.assign("x", 3)
        graph = compute_dependences(b.build())
        assert not edges(graph, "out", src=first.qid, dst=third.qid)

    def test_carried_anti_within_statement(self):
        b = IRBuilder()
        with b.loop("i", 1, 5):
            s = b.binary("s", "s", "+", 1)
        graph = compute_dependences(b.build())
        found = edges(graph, "anti", src=s.qid, dst=s.qid)
        assert any(e.vector == ("<",) for e in found)


class TestArrayDeps:
    def test_carried_flow_distance_one(self):
        program, graph = deps_of(
            """
            program t
              integer i, n
              real b(20)
              n = 10
              do i = 2, n
                b(i) = b(i-1) + 1.0
              end do
              write b(3)
            end
            """
        )
        stmt = program[2].qid
        found = edges(graph, "flow", src=stmt, dst=stmt, var="b")
        assert [e.vector for e in found] == [("<",)]

    def test_same_element_no_carried(self):
        program, graph = deps_of(
            """
            program t
              integer i, n
              real b(20)
              n = 10
              do i = 1, n
                b(i) = b(i) * 2.0
              end do
              write b(3)
            end
            """
        )
        stmt = program[2].qid
        assert not edges(graph, "flow", src=stmt, dst=stmt, var="b")

    def test_interchange_preventing_vector(self):
        program, graph = deps_of(
            """
            program t
              integer i, j, n
              real a(20,20)
              n = 10
              do i = 2, n
                do j = 1, n
                  a(i,j) = a(i-1,j+1) * 0.5
                end do
              end do
              write a(3,3)
            end
            """
        )
        stmt = program[3].qid
        found = edges(graph, "flow", src=stmt, dst=stmt, var="a")
        assert [e.vector for e in found] == [("<", ">")]

    def test_distinct_loops_reusing_lcv_name_still_depend(self):
        # two separate loops both named i: r(i) init feeds r(i+1) reads
        program, graph = deps_of(
            """
            program t
              integer i, n
              real r(20)
              n = 10
              do i = 1, n
                r(i) = 1.0
              end do
              do i = 1, 5
                r(i) = r(i+1) * 2.0
              end do
              write r(1)
            end
            """
        )
        init = program[2].qid
        update = program[5].qid
        assert edges(graph, "flow", src=init, dst=update, var="r")

    def test_branch_exclusive_statements_no_equal_dep(self):
        b = IRBuilder()
        with b.if_else("c", ">", 0) as (_g, orelse):
            first = b.assign(b.arr("a", 1), 1)
            orelse.begin()
            second = b.assign("x", b.arr("a", 1))
        graph = compute_dependences(b.build())
        assert not edges(graph, "flow", src=first.qid, dst=second.qid)

    def test_reads_do_not_depend_on_reads(self):
        b = IRBuilder()
        first = b.assign("x", b.arr("a", 1))
        second = b.assign("y", b.arr("a", 1))
        graph = compute_dependences(b.build())
        assert not edges(graph, "flow", src=first.qid, dst=second.qid)
        assert not edges(graph, "anti", src=first.qid, dst=second.qid)


class TestControl:
    def test_if_controls_branches(self):
        b = IRBuilder()
        with b.if_else("c", ">", 0) as (guard, orelse):
            then_stmt = b.assign("x", 1)
            orelse.begin()
            else_stmt = b.assign("x", 2)
        graph = compute_dependences(b.build())
        assert edges(graph, "ctrl", src=guard.qid, dst=then_stmt.qid)
        assert edges(graph, "ctrl", src=guard.qid, dst=else_stmt.qid)

    def test_loop_controls_body(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            stmt = b.assign("x", 1)
        graph = compute_dependences(b.build())
        assert edges(graph, "ctrl", src=head.qid, dst=stmt.qid)

    def test_statement_outside_not_controlled(self):
        b = IRBuilder()
        with b.if_("c", ">", 0) as guard:
            b.assign("x", 1)
        after = b.assign("y", 2)
        graph = compute_dependences(b.build())
        assert not edges(graph, "ctrl", src=guard.qid, dst=after.qid)


class TestGraphSummary:
    def test_summary_counts(self):
        b = IRBuilder()
        d = b.assign("x", 1)
        b.assign("y", "x")
        graph = compute_dependences(b.build())
        summary = graph.summary()
        assert summary["flow"] >= 1
        assert set(summary) == {"flow", "anti", "out", "ctrl"}


class TestInductionVariables:
    def test_no_anti_into_own_loop_header(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            use = b.assign("x", "i")
        graph = compute_dependences(b.build())
        assert not edges(graph, "anti", src=use.qid, dst=head.qid)

    def test_no_out_between_loop_headers(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as first:
            b.assign("x", "i")
        with b.loop("i", 1, 5) as second:
            b.assign("y", "i")
        graph = compute_dependences(b.build())
        assert not edges(graph, "out", src=first.qid, dst=second.qid)

    def test_flow_from_header_survives(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            b.assign("x", "i")
        after = b.write("i")
        graph = compute_dependences(b.build())
        assert edges(graph, "flow", src=head.qid, dst=after.qid)

    def test_anti_into_plain_redefinition_survives(self):
        b = IRBuilder()
        use = b.assign("x", "i")
        redef = b.assign("i", 9)
        graph = compute_dependences(b.build())
        assert edges(graph, "anti", src=use.qid, dst=redef.qid)
