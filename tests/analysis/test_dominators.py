"""Unit tests for dominators, postdominators and FOW control deps."""

from repro.analysis.cfg import build_cfg
from repro.analysis.control_dep import compute_control_deps
from repro.analysis.dominators import (
    compute_dominators,
    compute_postdominators,
    control_dependence_fow,
)
from repro.ir.builder import IRBuilder


def branchy_program():
    b = IRBuilder()
    b.assign("x", 0)  # 0
    with b.if_else("x", ">", 0) as (_g, orelse):  # IF at 1
        b.assign("y", 1)  # 2
        orelse.begin()  # 3
        b.assign("y", 2)  # 4
    # ENDIF at 5
    b.write("y")  # 6
    return b.build()


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(branchy_program())
        dom = compute_dominators(cfg)
        for node in range(cfg.node_count()):
            assert dom.dominates(cfg.entry, node)

    def test_branch_does_not_dominate_merge_sides(self):
        cfg = build_cfg(branchy_program())
        dom = compute_dominators(cfg)
        assert dom.dominates(1, 2)
        assert dom.dominates(1, 4)
        assert dom.dominates(1, 6)
        assert not dom.dominates(2, 6)  # then-branch doesn't dominate merge

    def test_strict_domination(self):
        cfg = build_cfg(branchy_program())
        dom = compute_dominators(cfg)
        assert not dom.strictly_dominates(2, 2)
        assert dom.strictly_dominates(0, 2)

    def test_dominators_chain(self):
        cfg = build_cfg(branchy_program())
        dom = compute_dominators(cfg)
        chain = dom.dominators_of(2)
        assert chain[0] == 2 and chain[-1] == cfg.entry

    def test_loop_header_dominates_body(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            b.assign("x", "i")
        cfg = build_cfg(b.build())
        dom = compute_dominators(cfg)
        assert dom.dominates(0, 1)
        assert dom.dominates(0, 2)


class TestPostdominators:
    def test_exit_postdominates_everything(self):
        cfg = build_cfg(branchy_program())
        pdom = compute_postdominators(cfg)
        for node in range(cfg.node_count()):
            assert pdom.dominates(cfg.exit, node)

    def test_merge_postdominates_branches(self):
        cfg = build_cfg(branchy_program())
        pdom = compute_postdominators(cfg)
        assert pdom.dominates(6, 2)
        assert pdom.dominates(6, 4)
        assert not pdom.dominates(2, 1)


class TestControlDependence:
    def test_fow_marks_branch_bodies(self):
        program = branchy_program()
        cfg = build_cfg(program)
        deps = control_dependence_fow(cfg)
        assert 2 in deps[1]
        assert 4 in deps[1]
        assert 6 not in deps.get(1, set())

    def test_structural_matches_fow_for_if_bodies(self):
        program = branchy_program()
        structural = compute_control_deps(program)
        cfg = build_cfg(program)
        fow = control_dependence_fow(cfg)
        if_qid = program[1].qid
        structural_controlled = {
            program.position(q) for q in structural.region_of(if_qid)
        }
        # FOW computes positions; structural computes qids of real stmts
        assert {2, 4} <= structural_controlled
        assert {2, 4} <= fow[1]

    def test_loop_controls_its_body(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            stmt = b.assign("x", "i")
        program = b.build()
        deps = compute_control_deps(program)
        assert deps.is_control_dependent(stmt.qid, head.qid)
        assert deps.guards_of(stmt.qid) == (head.qid,)

    def test_nested_guards_ordered_outermost_first(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            with b.if_("x", ">", 0) as guard:
                stmt = b.assign("y", 1)
        deps = compute_control_deps(b.build())
        assert deps.guards_of(stmt.qid) == (head.qid, guard.qid)
