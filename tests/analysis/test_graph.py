"""Unit tests for the dependence graph container and queries."""

import pytest

from repro.analysis.graph import DepEdge, DependenceGraph


def edge(kind="flow", src=1, dst=2, var="x", vector=(), dst_pos="a"):
    return DepEdge(kind=kind, src=src, dst=dst, var=var, vector=vector,
                   dst_pos=dst_pos)


class TestContainer:
    def test_add_and_len(self):
        graph = DependenceGraph([edge(), edge(dst=3)])
        assert len(graph) == 2

    def test_duplicates_ignored(self):
        graph = DependenceGraph()
        graph.add(edge())
        graph.add(edge())
        assert len(graph) == 1

    def test_iteration(self):
        graph = DependenceGraph([edge(), edge(kind="anti")])
        assert {e.kind for e in graph} == {"flow", "anti"}

    def test_carried_property(self):
        assert edge(vector=("<",)).carried
        assert not edge(vector=("=", "=")).carried
        assert edge(vector=("=", "*")).carried

    def test_str(self):
        text = str(edge(vector=("<",)))
        assert "flow" in text and "(<)" in text


class TestQueries:
    def graph(self):
        return DependenceGraph([
            edge(src=1, dst=2, vector=()),
            edge(src=1, dst=3, vector=("<",)),
            edge(kind="anti", src=2, dst=3),
            edge(kind="out", src=1, dst=4, var="y"),
        ])

    def test_query_by_src(self):
        assert len(self.graph().query("flow", src=1)) == 2

    def test_query_by_dst(self):
        assert len(self.graph().query("flow", dst=3)) == 1

    def test_query_by_both(self):
        assert len(self.graph().query("flow", src=1, dst=2)) == 1
        assert not self.graph().query("flow", src=2, dst=1)

    def test_query_by_var(self):
        assert len(self.graph().query("out", var="y")) == 1
        assert not self.graph().query("out", var="z")

    def test_query_with_pattern(self):
        found = self.graph().query("flow", src=1, pattern=("<",))
        assert [e.dst for e in found] == [3]

    def test_query_unknown_kind(self):
        with pytest.raises(ValueError):
            self.graph().query("bogus")

    def test_exists(self):
        graph = self.graph()
        assert graph.exists("anti", src=2)
        assert not graph.exists("anti", src=9)

    def test_deps_from_all_kinds(self):
        found = self.graph().deps_from(1)
        assert {e.kind for e in found} == {"flow", "out"}

    def test_deps_to_one_kind(self):
        found = self.graph().deps_to(3, "anti")
        assert len(found) == 1

    def test_count(self):
        graph = self.graph()
        assert graph.count() == 4
        assert graph.count("flow") == 2
