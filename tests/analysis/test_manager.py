"""Unit tests for the version-keyed analysis manager.

Covers the generic product cache, the change-log plumbing on
``Program``, the incremental dependence splice (against full rebuilds),
the full-rebuild fallbacks, the shadow-check debug mode and the stats
counters.
"""

import pytest

from repro.analysis.dependence import compute_dependences
from repro.analysis.manager import (
    AnalysisManager,
    IncrementalMismatchError,
    manager_for,
)
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var


def straight_line() -> Program:
    b = IRBuilder()
    b.assign("x", 1)
    b.binary("y", "x", "+", 2)
    b.assign("z", "y")
    b.write("z")
    return b.build()


def loopy() -> Program:
    b = IRBuilder()
    b.assign("n", 8)
    with b.loop("i", 1, 8):
        b.assign(b.arr("a", "i"), "i")
        b.binary("s", "s", "+", 1)
    b.write("s")
    return b.build()


def assert_matches_full(manager: AnalysisManager) -> None:
    got = manager.graph().edge_set()
    want = compute_dependences(manager.program).edge_set()
    assert got == want


class TestProductCache:
    def test_same_version_hits(self):
        manager = AnalysisManager(straight_line())
        first = manager.cfg()
        assert manager.cfg() is first
        assert manager.stats.hits["cfg"] == 1
        assert manager.stats.misses["cfg"] == 1

    def test_version_bump_invalidates(self):
        program = straight_line()
        manager = AnalysisManager(program)
        first = manager.reaching()
        program.touch(program[0].qid)
        assert manager.reaching() is not first
        assert manager.stats.misses["reaching"] == 2

    def test_all_products_available(self):
        manager = AnalysisManager(loopy())
        manager.cfg()
        manager.structure()
        manager.dominators()
        manager.reaching()
        manager.liveness()
        manager.control_deps()
        manager.graph()

    def test_graph_cached_per_version(self):
        manager = AnalysisManager(straight_line())
        assert manager.graph() is manager.graph()
        assert manager.stats.hits["dependences"] == 1


class TestChangeLog:
    def test_mutations_are_logged(self):
        program = straight_line()
        v0 = program.version
        added = program.append(Quad(Opcode.ASSIGN, result=Var("w"),
                                    a=Const(3)))
        program.touch(added.qid)
        program.remove(added.qid)
        kinds = [c.kind for c in program.changes_since(v0)]
        assert kinds == ["add", "modify", "remove"]

    def test_untagged_touch_is_opaque(self):
        program = straight_line()
        v0 = program.version
        program.touch()
        (change,) = program.changes_since(v0)
        assert change.kind == "opaque"

    def test_clone_resets_log(self):
        program = straight_line()
        program.touch(program[0].qid)
        fresh = program.clone()
        assert fresh.changes_since(fresh.version) == []
        # history strictly before the clone's floor is unavailable
        assert fresh.changes_since(-1) is None

    def test_move_logs_single_move(self):
        program = straight_line()
        v0 = program.version
        program.move_to_front(program[1].qid)
        kinds = [c.kind for c in program.changes_since(v0)]
        assert kinds == ["move"]


class TestIncrementalUpdate:
    def test_modify_splices_exactly(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        target = program[1]
        target.a = Const(5)
        target.opcode = Opcode.ASSIGN
        target.b = None
        program.touch(target.qid)
        assert_matches_full(manager)
        assert manager.stats.incremental_updates == 1

    def test_remove_drops_dead_endpoints(self):
        program = straight_line()
        manager = AnalysisManager(program)
        before = manager.graph()
        victim = program[2].qid
        program.remove(victim)
        after = manager.graph()
        assert all(victim not in (e.src, e.dst) for e in after)
        assert after is not before
        assert_matches_full(manager)

    def test_insert_adds_new_edges(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        program.insert_at(1, Quad(Opcode.ASSIGN, result=Var("x"),
                                  a=Const(9)))
        assert_matches_full(manager)
        assert manager.stats.incremental_updates == 1

    def test_move_non_marker_inside_loop(self):
        program = loopy()
        manager = AnalysisManager(program)
        manager.graph()
        store = next(q for q in program if q.defined_array() is not None)
        body_peer = next(q for q in program if q.opcode is Opcode.ADD)
        program.move_after(store.qid, body_peer.qid)
        assert_matches_full(manager)
        assert manager.stats.incremental_updates == 1

    def test_untouched_variable_edges_are_retained(self):
        program = loopy()
        manager = AnalysisManager(program)
        manager.graph()
        target = next(q for q in program if q.defined_array() is not None)
        program.touch(target.qid)
        manager.graph()
        assert manager.stats.edges_retained > 0

    def test_batched_changes_one_update(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        program.touch(program[0].qid)
        program.touch(program[2].qid)
        program.insert_at(0, Quad(Opcode.ASSIGN, result=Var("q"),
                                  a=Const(1)))
        assert_matches_full(manager)
        assert manager.stats.incremental_updates == 1


class TestFullRebuildFallbacks:
    def test_opaque_touch_forces_rebuild(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        program.touch()
        manager.graph()
        assert manager.stats.full_rebuilds == 2
        assert manager.stats.incremental_updates == 0

    def test_marker_touch_forces_rebuild(self):
        program = loopy()
        manager = AnalysisManager(program)
        manager.graph()
        head = next(q for q in program if q.opcode is Opcode.DO)
        head.opcode = Opcode.DOALL
        program.touch(head.qid)
        assert_matches_full(manager)
        assert manager.stats.full_rebuilds == 2

    def test_trimmed_history_forces_rebuild(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        qid = program[0].qid
        for _ in range(5000):  # overflow the change log
            program.touch(qid)
        assert_matches_full(manager)
        assert manager.stats.full_rebuilds == 2

    def test_incremental_false_always_rebuilds(self):
        program = straight_line()
        manager = AnalysisManager(program, incremental=False)
        manager.graph()
        program.touch(program[0].qid)
        manager.graph()
        assert manager.stats.full_rebuilds == 2
        assert manager.stats.incremental_updates == 0


class TestShadowCheck:
    def test_full_check_counts(self):
        program = straight_line()
        manager = AnalysisManager(program, full_check=True)
        manager.graph()
        program.touch(program[0].qid)
        manager.graph()
        assert manager.stats.shadow_checks == 1

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_CHECK", "1")
        assert AnalysisManager(straight_line()).full_check
        monkeypatch.setenv("REPRO_ANALYSIS_CHECK", "0")
        assert not AnalysisManager(straight_line()).full_check

    def test_divergence_raises(self):
        program = straight_line()
        manager = AnalysisManager(program, full_check=True)
        stale = manager.graph()
        # sabotage: mutate a quad without logging it, then log a
        # *different* quad so the splice retains stale edges
        program[1].a = Var("z")
        program.touch(program[3].qid)
        with pytest.raises(IncrementalMismatchError):
            manager.graph()
        assert stale is not None


class TestManagerFor:
    def test_reuses_matching_manager(self):
        program = straight_line()
        manager = AnalysisManager(program)
        assert manager_for(program, manager) is manager

    def test_replaces_foreign_manager(self):
        manager = AnalysisManager(straight_line())
        other = straight_line()
        resolved = manager_for(other, manager)
        assert resolved is not manager
        assert resolved.program is other

    def test_invalidate_clears_products(self):
        program = straight_line()
        manager = AnalysisManager(program)
        manager.graph()
        manager.cfg()
        manager.invalidate()
        manager.graph()
        assert manager.stats.misses["dependences"] == 2

    def test_stats_as_dict_roundtrip(self):
        manager = AnalysisManager(straight_line())
        manager.graph()
        snapshot = manager.stats.as_dict()
        assert snapshot["full_rebuilds"] == 1
        assert "dependences" in snapshot["misses"]
        assert "rebuild" in manager.stats.summary()
