"""Unit tests for reaching definitions and liveness."""

from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching import compute_reaching
from repro.ir.builder import IRBuilder


class TestReaching:
    def test_straight_line_kill(self):
        b = IRBuilder()
        b.assign("x", 1)
        b.assign("x", 2)
        b.assign("y", "x")
        reaching = compute_reaching(b.build())
        defs = reaching.reaching_defs_of(2, "x")
        assert [d.position for d in defs] == [1]

    def test_branches_merge(self):
        b = IRBuilder()
        b.assign("x", 0)
        with b.if_else("c", ">", 0) as (_g, orelse):
            b.assign("x", 1)
            orelse.begin()
            b.assign("x", 2)
        b.assign("y", "x")
        program = b.build()
        reaching = compute_reaching(program)
        use_position = len(program) - 1
        positions = {d.position
                     for d in reaching.reaching_defs_of(use_position, "x")}
        assert positions == {2, 4}  # both branch defs; initial killed

    def test_conditional_def_does_not_kill(self):
        b = IRBuilder()
        b.assign("x", 0)
        with b.if_("c", ">", 0):
            b.assign("x", 1)
        b.assign("y", "x")
        program = b.build()
        reaching = compute_reaching(program)
        positions = {d.position
                     for d in reaching.reaching_defs_of(len(program) - 1, "x")}
        assert positions == {0, 2}

    def test_loop_carried_def_in_full_not_acyclic(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            use = b.assign("y", "x")  # reads x at loop top
            b.assign("x", 1)  # defined later in the body
        program = b.build()
        reaching = compute_reaching(program)
        use_position = program.position(use.qid)
        full = {d.position
                for d in reaching.reaching_defs_of(use_position, "x")}
        acyclic = {
            d.position
            for d in reaching.reaching_defs_of(use_position, "x",
                                               acyclic=True)
        }
        assert 2 in full
        assert 2 not in acyclic

    def test_loop_head_defines_lcv(self):
        b = IRBuilder()
        with b.loop("i", 1, 3) as head:
            use = b.assign("y", "i")
        program = b.build()
        reaching = compute_reaching(program)
        defs = reaching.reaching_defs_of(program.position(use.qid), "i")
        assert [d.qid for d in defs] == [head.qid]

    def test_definition_at(self):
        b = IRBuilder()
        b.assign("x", 1)
        b.write("x")
        reaching = compute_reaching(b.build())
        assert reaching.definition_at(0).var == "x"
        assert reaching.definition_at(1) is None


class TestLiveness:
    def test_dead_def(self):
        b = IRBuilder()
        b.assign("x", 1)
        b.assign("x", 2)
        b.write("x")
        liveness = compute_liveness(b.build())
        assert not liveness.is_live_out(0, "x")
        assert liveness.is_live_out(1, "x")

    def test_live_through_loop(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 1, 3):
            b.binary("s", "s", "+", "i")
        b.write("s")
        liveness = compute_liveness(b.build())
        assert liveness.is_live_out(0, "s")
        assert liveness.is_live_out(2, "s")

    def test_live_in_sets(self):
        b = IRBuilder()
        b.binary("z", "x", "+", "y")
        liveness = compute_liveness(b.build())
        assert liveness.live_in(0) == frozenset({"x", "y"})

    def test_branch_use_keeps_value_live(self):
        b = IRBuilder()
        b.assign("x", 1)
        with b.if_("c", ">", 0):
            b.write("x")
        liveness = compute_liveness(b.build())
        assert liveness.is_live_out(0, "x")

    def test_unknown_variable_not_live(self):
        b = IRBuilder()
        b.assign("x", 1)
        liveness = compute_liveness(b.build())
        assert not liveness.is_live_out(0, "nosuch")

    def test_array_subscript_vars_are_uses(self):
        b = IRBuilder()
        b.assign("i", 1)
        b.write(b.arr("a", "i"))
        liveness = compute_liveness(b.build())
        assert liveness.is_live_out(0, "i")
