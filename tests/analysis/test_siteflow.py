"""Equivalence of the structured reaching-sites solver with the
bit-vector reference.

:mod:`repro.analysis.siteflow` replaced the generic
:func:`~repro.analysis.dataflow.solve_forward` for the scalar
dependence pass.  These tests re-derive the four solutions —
definition/use sites, cyclic/acyclic — via the bit-vector solver using
the exact gen/kill encoding the dependence analyzer historically used,
then compare the structured walk's answer at *every* program position
for *every* variable.  Any divergence is a soundness bug in one of the
two solvers, not a performance matter.
"""

from __future__ import annotations

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import bits_to_indices, solve_forward
from repro.analysis.dependence import DependenceAnalyzer
from repro.analysis.siteflow import SiteFlow
from repro.frontend import parse_program
from repro.workloads import large_program
from repro.workloads.programs import SOURCES
from repro.workloads.synthetic import random_program


def _reference_solutions(program, cfg, sites, gen_uses):
    """The seed encoding: defs kill other defs of the variable; for the
    use flavour a definition kills all pending uses (its own reads are
    in ``gen`` and survive the ``gen ∪ (IN ∖ kill)`` transfer)."""
    size = len(program)
    gen = [0] * size
    kill = [0] * size
    var_mask: dict[str, int] = {}
    entry_bits = 0
    for site in sites:
        if site.position == -1:
            entry_bits |= 1 << site.index
        else:
            gen[site.position] |= 1 << site.index
        var_mask[site.var] = var_mask.get(site.var, 0) | (1 << site.index)
    for position, quad in enumerate(program):
        var = quad.defined_scalar()
        if var is None:
            continue
        mask = var_mask.get(var, 0)
        if gen_uses:
            kill[position] |= mask
        else:
            kill[position] |= mask & ~gen[position]
    full = solve_forward(cfg, gen, kill, may=True, entry_bits=entry_bits)
    acyclic = solve_forward(
        cfg, gen, kill, may=True, acyclic=True, entry_bits=entry_bits
    )
    return full, acyclic, var_mask


def _assert_equivalent(program) -> None:
    """Compare SiteFlow against the bit-vector reference everywhere."""
    analyzer = DependenceAnalyzer(program)
    variables = sorted(
        {site.var for site in analyzer._def_sites}
        | {site.var for site in analyzer._use_sites}
    )
    needed = {
        position: variables for position in range(len(program))
    }
    flow = SiteFlow(
        program, analyzer._def_sites, analyzer._use_sites, needed
    )
    cfg = build_cfg(program)
    checked = 0
    for sites, gen_uses, full_sets, acyclic_sets in (
        (analyzer._def_sites, False, flow.def_full, flow.def_acyclic),
        (analyzer._use_sites, True, flow.use_full, flow.use_acyclic),
    ):
        full, acyclic, var_mask = _reference_solutions(
            program, cfg, sites, gen_uses
        )
        for position in range(len(program)):
            for var in variables:
                mask = var_mask.get(var, 0)
                want_full = frozenset(
                    bits_to_indices(full.in_bits(position) & mask)
                )
                want_acyclic = frozenset(
                    bits_to_indices(acyclic.in_bits(position) & mask)
                )
                assert full_sets.at(position, var) == want_full, (
                    f"full mismatch at position {position} var {var!r}"
                )
                assert acyclic_sets.at(position, var) == want_acyclic, (
                    f"acyclic mismatch at position {position} var {var!r}"
                )
                checked += 1
    assert checked > 0


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_match_bitvector(seed):
    """Randomized structured programs, every position and variable."""
    program = random_program(seed, size=30 + 5 * seed, max_depth=3)
    _assert_equivalent(program)


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_workload_programs_match_bitvector(name):
    """The hand-written FORTRAN-style corpus."""
    _assert_equivalent(parse_program(SOURCES[name]))


def test_scale_generator_program_matches_bitvector():
    """A slice of the HOMPACK-flavoured scaling workload."""
    _assert_equivalent(large_program(seed=11, target_quads=400))


def test_unregistered_query_is_loud():
    """``SiteSets.at`` must raise for points not pre-registered, so a
    forgotten ``needed`` entry cannot read as an empty reaching set."""
    program = parse_program(SOURCES[sorted(SOURCES)[0]])
    analyzer = DependenceAnalyzer(program)
    flow = SiteFlow(
        program, analyzer._def_sites, analyzer._use_sites, needed={}
    )
    with pytest.raises(KeyError):
        flow.def_full.at(0, "nosuchvar")


def test_restricted_analysis_matches_full_subset():
    """A ``restrict_names`` analyzer's scalar edges are exactly the
    matching subset of the full graph (the splice property the
    incremental manager relies on), under the structured solver."""
    program = parse_program(SOURCES["gauss"])
    full = DependenceAnalyzer(program).analyze()
    names = frozenset(program.scalar_names())
    some = frozenset(sorted(names)[: max(1, len(names) // 2)])
    partial = DependenceAnalyzer(program, restrict_names=some).analyze()
    scalar_kinds = {"flow", "anti", "out"}
    want = {
        edge
        for edge in full.edges
        if edge.kind in scalar_kinds and edge.var in some
    }
    got = {edge for edge in partial.edges if edge.kind in scalar_kinds}
    assert got == want
