"""Unit tests for the subscript dependence tests and direction vectors."""

from repro.analysis.subscript import (
    ALL_DIRECTIONS,
    LoopContext,
    directions_for_dimension,
    expand_direction_vectors,
    lexicographic_class,
    matches_anchored_pattern,
    matches_direction_pattern,
    reverse_vector,
)
from repro.analysis.subscript import test_access_pair as check_access_pair
from repro.ir.types import Affine, Var

I = LoopContext(var="i", trip_count=10)
J = LoopContext(var="j", trip_count=10)


def aff(const=0, **coeffs):
    return Affine.of(const, **coeffs)


class TestZIV:
    def test_different_constants_independent(self):
        assert directions_for_dimension(aff(3), aff(5), [I]) is None

    def test_equal_constants_unconstrained(self):
        result = directions_for_dimension(aff(3), aff(3), [I])
        assert result == [ALL_DIRECTIONS]

    def test_matching_symbolics_equal(self):
        result = directions_for_dimension(aff(0, n=1), aff(0, n=1), [I])
        assert result == [ALL_DIRECTIONS]

    def test_mismatched_symbolics_conservative(self):
        result = directions_for_dimension(aff(0, n=1), aff(0, m=1), [I])
        assert result == [ALL_DIRECTIONS]

    def test_symbolic_vs_shifted_symbolic_conservative(self):
        # n vs n+1 with the same symbol IS provably different
        assert directions_for_dimension(aff(0, n=1), aff(1, n=1), [I]) is None


class TestStrongSIV:
    def test_zero_distance_gives_equal(self):
        result = directions_for_dimension(aff(0, i=1), aff(0, i=1), [I])
        assert result == [frozenset({"="})]

    def test_positive_distance_gives_forward(self):
        # write a(i), read a(i-1): sink iteration later
        result = directions_for_dimension(aff(0, i=1), aff(-1, i=1), [I])
        assert result == [frozenset({"<"})]

    def test_negative_distance_gives_backward(self):
        result = directions_for_dimension(aff(0, i=1), aff(1, i=1), [I])
        assert result == [frozenset({">"})]

    def test_non_integer_distance_independent(self):
        # 2i vs 2i+1: never equal
        assert directions_for_dimension(aff(0, i=2), aff(1, i=2), [I]) is None

    def test_distance_beyond_trip_count_independent(self):
        short = LoopContext(var="i", trip_count=3)
        assert directions_for_dimension(
            aff(0, i=1), aff(-5, i=1), [short]
        ) is None

    def test_unknown_trip_keeps_dependence(self):
        unknown = LoopContext(var="i", trip_count=None)
        result = directions_for_dimension(
            aff(0, i=1), aff(-5, i=1), [unknown]
        )
        assert result == [frozenset({"<"})]

    def test_coefficient_scaling(self):
        # 2i vs 2i-2: distance 1
        result = directions_for_dimension(aff(0, i=2), aff(-2, i=2), [I])
        assert result == [frozenset({"<"})]


class TestWeakAndMIV:
    def test_weak_siv_gcd_infeasible(self):
        # 2i vs 2j+1 over one loop var? different coefficients 2 and 2
        # with odd offset: 2i1 - 2i2 = 1 unsolvable
        assert directions_for_dimension(aff(0, i=2), aff(1, i=4), [I]) is None

    def test_weak_siv_feasible_unconstrained(self):
        result = directions_for_dimension(aff(0, i=1), aff(0, i=2), [I])
        assert result == [ALL_DIRECTIONS]

    def test_miv_gcd_feasible(self):
        result = directions_for_dimension(
            aff(0, i=1, j=1), aff(0, i=1), [I, J]
        )
        assert result is not None

    def test_miv_gcd_infeasible(self):
        assert directions_for_dimension(
            aff(0, i=2, j=2), aff(1, i=2), [I, J]
        ) is None

    def test_opaque_var_subscript_conservative(self):
        result = directions_for_dimension(Var("t"), aff(0, i=1), [I])
        assert result == [ALL_DIRECTIONS]


class TestAccessPair:
    def test_dimensions_intersect(self):
        # a(i, j) vs a(i, j-1): dim1 forces '=', dim2 forces '<'
        result = check_access_pair(
            (aff(0, i=1), aff(0, j=1)),
            (aff(0, i=1), aff(-1, j=1)),
            [I, J],
        )
        assert result == [frozenset({"="}), frozenset({"<"})]

    def test_any_independent_dimension_kills_pair(self):
        result = check_access_pair(
            (aff(0, i=1), aff(1)),
            (aff(0, i=1), aff(2)),
            [I],
        )
        assert result is None

    def test_contradictory_dimensions_kill_pair(self):
        # a(i, i) vs a(i-1, i): dim1 wants '<', dim2 wants '='
        result = check_access_pair(
            (aff(0, i=1), aff(0, i=1)),
            (aff(-1, i=1), aff(0, i=1)),
            [I],
        )
        assert result is None


class TestVectors:
    def test_expansion(self):
        vectors = expand_direction_vectors(
            [frozenset({"="}), frozenset({"<", ">"})]
        )
        assert set(vectors) == {("=", "<"), ("=", ">")}

    def test_lexicographic_class(self):
        assert lexicographic_class(("=", "<")) == "forward"
        assert lexicographic_class(("=", "=")) == "equal"
        assert lexicographic_class((">", "<")) == "backward"
        assert lexicographic_class(()) == "equal"

    def test_reverse(self):
        assert reverse_vector(("<", "=", ">")) == (">", "=", "<")


class TestPatternMatching:
    def test_none_matches_anything(self):
        assert matches_direction_pattern(("<", ">"), None)

    def test_exact_match(self):
        assert matches_direction_pattern(("<", ">"), ("<", ">"))
        assert not matches_direction_pattern(("<", "="), ("<", ">"))

    def test_short_pattern_requires_equal_deeper(self):
        assert matches_direction_pattern(("=", "="), ("=",))
        assert not matches_direction_pattern(("=", "<"), ("=",))

    def test_empty_vector_is_loop_independent(self):
        assert matches_direction_pattern((), ("=",))
        assert not matches_direction_pattern((), ("<",))

    def test_wildcards(self):
        assert matches_direction_pattern(("<", ">"), ("*", ">"))
        assert matches_direction_pattern(("<",), ("any",))

    def test_star_in_vector_is_may(self):
        assert matches_direction_pattern(("*",), ("<",))
        assert matches_direction_pattern(("<", "*"), ("<", ">"))

    def test_anchored_requires_equal_outer_prefix(self):
        # pattern (<) at level 1: outer level must be '='
        assert matches_anchored_pattern(("=", "<"), ("<",), 1)
        assert not matches_anchored_pattern(("<", "<"), ("<",), 1)

    def test_anchored_deeper_levels_unconstrained(self):
        assert matches_anchored_pattern(("<", "*"), ("<",), 0)
        assert matches_anchored_pattern(("=", "<", ">"), ("<",), 1)

    def test_anchored_vector_shorter_than_needed(self):
        # missing levels read as '='
        assert not matches_anchored_pattern((), ("<",), 0)
        assert matches_anchored_pattern((), ("=",), 0)
