"""Shared fixtures: cached optimizers and workload programs."""

from __future__ import annotations

import pytest

from repro.opts.catalog import standard_optimizers
from repro.workloads.suite import full_suite


@pytest.fixture(scope="session")
def optimizers():
    """All catalog optimizers, generated once per test session."""
    return standard_optimizers()


@pytest.fixture(scope="session")
def suite():
    """The ten workload programs."""
    return full_suite()


@pytest.fixture(scope="session")
def suite_by_name(suite):
    return {item.name: item for item in suite}
