"""Tests for the dependence-recomputation ablation."""

from repro.experiments.ablation import run_recompute_ablation
from repro.workloads.suite import full_suite


def test_ablation_on_subset():
    result = run_recompute_ablation(full_suite(["newton", "poly"]))
    assert len(result.rows) == 2
    assert result.all_correct
    assert result.total_stale <= result.total_fresh
    assert "recomputation" in result.table()


def test_row_derived_metrics():
    result = run_recompute_ablation(full_suite(["integrate"]))
    row = result.rows[0]
    assert row.missed_applications == (
        row.applications_fresh - row.applications_stale
    )
    assert row.speedup > 0
