"""Tests for the Section 4 experiment harness (E1–E6).

Most experiments run on the full ten-program suite (a few seconds
each); the assertions are the paper's claims.
"""

import pytest

from repro.experiments.applicability import run_applicability
from repro.experiments.costbenefit import run_costbenefit
from repro.experiments.enabling import run_enabling, run_enabling_matrix
from repro.experiments.ordering import run_ordering
from repro.experiments.quality import run_quality
from repro.experiments.report import render_table
from repro.experiments.strategies import (
    run_lur_variants,
    run_membership_strategies,
)
from repro.workloads.suite import full_suite


@pytest.fixture(scope="module")
def applicability():
    return run_applicability()


@pytest.fixture(scope="module")
def ordering():
    return run_ordering()


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "count"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("a")

    def test_render_table_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_bool_and_float_formatting(self):
        text = render_table(["a", "b", "c"], [[True, 1.0, 0.123456]])
        assert "yes" in text
        assert "0.123" in text


class TestE2Applicability:
    def test_ctp_is_most_frequent(self, applicability):
        assert applicability.most_frequent() == "CTP"

    def test_icm_zero(self, applicability):
        assert applicability.total("ICM") == 0

    def test_cpp_two_programs(self, applicability):
        assert len(applicability.programs_with_points("CPP")) == 2

    def test_fus_one_program(self, applicability):
        assert applicability.programs_with_points("FUS") == ["ordering"]

    def test_all_paper_claims(self, applicability):
        assert all(applicability.paper_claims().values())

    def test_table_renders_all_programs(self, applicability):
        table = applicability.table()
        for name in ("newton", "fft", "ordering", "TOTAL"):
            assert name in table


class TestE1Quality:
    @pytest.fixture(scope="class")
    def quality(self):
        # a representative subset keeps the test quick
        return run_quality(full_suite(["newton", "jacobian", "ordering"]))

    def test_all_points_match(self, quality):
        assert quality.all_points_match

    def test_all_correct(self, quality):
        assert quality.all_correct

    def test_code_sizes_comparable(self, quality):
        assert quality.all_comparable

    def test_table_renders(self, quality):
        assert "gen pts" in quality.table()


class TestE3Enabling:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_enabling_matrix()

    def test_ctp_enables_the_trio(self, matrix):
        ctp = matrix.results["CTP"]
        assert ctp.enabled_counts["DCE"] > 0
        assert ctp.enabled_counts["CFO"] > 0
        assert ctp.enabled_counts["LUR"] > 0

    def test_lur_most_enabled(self, matrix):
        ctp = matrix.results["CTP"]
        assert ctp.enabled_counts["LUR"] == max(ctp.enabled_counts.values())

    def test_cpp_enables_nothing(self, matrix):
        cpp = matrix.results["CPP"]
        assert sum(cpp.enabled_counts.values()) == 0

    def test_sites_recorded(self, matrix):
        ctp = matrix.results["CTP"]
        assert ctp.enabled_sites["LUR"]

    def test_single_source_run(self):
        result = run_enabling(
            source="CTP", targets=("DCE",),
            workloads=full_suite(["newton"]),
        )
        assert result.total_points == 2
        assert "enables" in result.table()


class TestE4Ordering:
    def test_six_orders(self, ordering):
        assert len(ordering.runs) == 6

    def test_orders_differ(self, ordering):
        assert ordering.distinct_programs > 1

    def test_all_claims_hold(self, ordering):
        assert all(ordering.claims.values()), ordering.claims

    def test_fus_first_orders_keep_fusion(self, ordering):
        by_first = {run.order[0]: run for run in ordering.runs}
        assert by_first["FUS"].applied["FUS"] == 1
        assert by_first["INX"].applied["FUS"] == 0

    def test_tables_render(self, ordering):
        assert "order" in ordering.table()
        assert "paper claim" in ordering.claims_table()


class TestE5CostBenefit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_costbenefit()

    def test_cost_tracks_time(self, result):
        assert result.correlation() > 0.8

    def test_inx_cheap_fus_expensive(self, result):
        inx = result.row("INX")
        fus = result.row("FUS")
        assert inx.cost_per_application < fus.cost_per_application

    def test_inx_parallel_benefit_positive(self, result):
        assert result.row("INX").benefit["multiprocessor"] > 0

    def test_fus_applies_once_with_little_benefit(self, result):
        fus = result.row("FUS")
        inx = result.row("INX")
        assert fus.applications == 1
        assert fus.benefit["scalar"] < inx.benefit["multiprocessor"]

    def test_lur_has_scalar_benefit(self, result):
        assert result.row("LUR").benefit["scalar"] > 0

    def test_table_renders(self, result):
        assert "cost/app" in result.table()


class TestE6Strategies:
    def test_lur_upper_first_cheaper(self):
        comparison = run_lur_variants()
        assert comparison.upper_first_cheaper
        assert comparison.upper_first_points == comparison.lower_first_points

    def test_membership_methods_vary(self):
        result = run_membership_strategies()
        assert result.winners_differ
        assert result.heuristic_always_optimal

    def test_membership_table_renders(self):
        result = run_membership_strategies(
            full_suite(["jacobian"]), opt_names=("PAR",)
        )
        assert "method-1" in result.table()
