"""Unit tests for the mini-Fortran tokenizer."""

import pytest

from repro.frontend.errors import FrontendError
from repro.frontend.lexer import TokKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokKind.EOF]


class TestBasics:
    def test_idents_and_keywords(self):
        tokens = tokenize("do i = 1, n")
        assert tokens[0].kind is TokKind.KEYWORD
        assert tokens[1].kind is TokKind.IDENT
        assert tokens[1].text == "i"

    def test_keywords_case_insensitive(self):
        assert tokenize("DO")[0].is_keyword("do")
        assert tokenize("Program")[0].is_keyword("program")

    def test_integers_and_floats(self):
        tokens = tokenize("42 3.5 .5 1e3 2.5e-2 1d0")
        values = [t.value for t in tokens if t.kind is not TokKind.EOF
                  and t.kind is not TokKind.NEWLINE]
        assert values == [42, 3.5, 0.5, 1000.0, 0.025, 1.0]

    def test_integer_vs_float_kinds(self):
        tokens = tokenize("7 7.0")
        assert tokens[0].kind is TokKind.INT
        assert tokens[1].kind is TokKind.FLOAT

    def test_operators(self):
        assert texts("a = b ** 2 <= c") == ["a", "=", "b", "**", "2", "<=",
                                            "c", "\n"]

    def test_fortran_not_equal_normalized(self):
        tokens = tokenize("a /= b")
        assert tokens[1].text == "!="

    def test_comments_stripped(self):
        assert texts("x = 1 ! a comment\n") == ["x", "=", "1", "\n"]

    def test_newlines_collapse(self):
        newline_count = sum(
            1 for t in tokenize("x = 1\n\n\ny = 2")
            if t.kind is TokKind.NEWLINE
        )
        assert newline_count == 2

    def test_leading_blank_lines_ignored(self):
        tokens = tokenize("\n\n x = 1")
        assert tokens[0].kind is TokKind.IDENT

    def test_line_and_column_tracking(self):
        tokens = tokenize("x = 1\n  y = 2")
        y_token = [t for t in tokens if t.text == "y"][0]
        assert y_token.line == 2
        assert y_token.column == 3

    def test_unexpected_character(self):
        with pytest.raises(FrontendError) as info:
            tokenize("x = @")
        assert "@" in str(info.value)

    def test_ends_with_newline_eof(self):
        tokens = tokenize("x = 1")
        assert tokens[-2].kind is TokKind.NEWLINE
        assert tokens[-1].kind is TokKind.EOF

    def test_empty_source(self):
        tokens = tokenize("")
        assert [t.kind for t in tokens] == [TokKind.EOF]

    def test_dollar_allowed_in_idents(self):
        assert tokenize("t$0")[0].text == "t$0"
