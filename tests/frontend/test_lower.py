"""Unit tests for AST-to-quad lowering."""

import pytest

from repro.frontend.errors import FrontendError
from repro.frontend.lower import parse_program
from repro.ir.interp import run_program
from repro.ir.quad import Opcode
from repro.ir.types import Affine, ArrayRef, Const, Var


def lower(statements, decls="  integer i, j, n\n  real a(10), b(10,10), x, y"):
    return parse_program(f"program t\n{decls}\n{statements}\nend\n")


class TestStatements:
    def test_simple_assign_is_one_quad(self):
        program = lower("x = 1")
        assert len(program) == 1
        assert program[0].opcode is Opcode.ASSIGN

    def test_top_level_binop_folds_into_target(self):
        program = lower("x = y + 1")
        assert len(program) == 1
        assert program[0].opcode is Opcode.ADD
        assert program[0].result == Var("x")

    def test_nested_expression_gets_temp(self):
        program = lower("x = (y + 1) * 2")
        assert len(program) == 2
        assert program[0].result == Var("t$0")
        assert program[1].opcode is Opcode.MUL

    def test_unary_minus_target(self):
        program = lower("x = -y")
        assert program[0].opcode is Opcode.NEG

    def test_unary_minus_of_literal_is_constant(self):
        program = lower("x = -3")
        assert program[0].opcode is Opcode.ASSIGN
        assert program[0].a == Const(-3)

    def test_intrinsic_into_target(self):
        program = lower("x = sqrt(y)")
        assert len(program) == 1
        assert program[0].opcode is Opcode.SQRT

    def test_mod_is_binary(self):
        program = lower("x = mod(i, 2)")
        assert program[0].opcode is Opcode.MOD

    def test_do_loop_shape(self):
        program = lower("do i = 1, n\n  x = i\nend do")
        assert [q.opcode for q in program] == [
            Opcode.DO, Opcode.ASSIGN, Opcode.ENDDO,
        ]

    def test_if_else_shape(self):
        program = lower(
            "if (x > y) then\n  x = 1\nelse\n  x = 2\nend if"
        )
        assert [q.opcode for q in program] == [
            Opcode.IF, Opcode.ASSIGN, Opcode.ELSE, Opcode.ASSIGN,
            Opcode.ENDIF,
        ]

    def test_read_write(self):
        program = lower("read x\nwrite x")
        assert [q.opcode for q in program] == [Opcode.READ, Opcode.WRITE]

    def test_write_of_expression_uses_temp(self):
        program = lower("write x + 1")
        assert program[0].opcode is Opcode.ADD
        assert program[1].opcode is Opcode.WRITE


class TestSubscripts:
    def test_affine_subscript(self):
        program = lower("a(i + 1) = x")
        target = program[0].result
        assert isinstance(target, ArrayRef)
        assert target.subscripts == (Affine.of(1, i=1),)

    def test_affine_with_coefficient(self):
        program = lower("a(2 * i - 1) = x")
        assert program[0].result.subscripts == (Affine.of(-1, i=2),)

    def test_multidim_affine(self):
        program = lower("b(i, j + 1) = x")
        assert program[0].result.subscripts == (
            Affine.var("i"), Affine.of(1, j=1),
        )

    def test_loop_variable_counts_as_integer(self):
        program = lower("do k = 1, n\n  a(k) = 1.0\nend do",
                        decls="  integer n\n  real a(10)")
        body = program[1]
        assert body.result.subscripts == (Affine.var("k"),)

    def test_non_affine_subscript_gets_temp(self):
        program = lower("a(i * j) = x")
        target = program[-1].result
        assert isinstance(target.subscripts[0], Var)

    def test_real_scalar_subscript_is_opaque(self):
        program = lower("a(x) = 1.0")
        assert program[0].result.subscripts == (Var("x"),)

    def test_constant_subscript(self):
        program = lower("a(3) = x")
        assert program[0].result.subscripts == (Affine.constant(3),)

    def test_undeclared_array_rejected(self):
        with pytest.raises(FrontendError):
            lower("q(i) = 1", decls="  integer i")


class TestSemantics:
    def test_lowered_program_executes(self):
        program = parse_program(
            """
            program t
              integer i, n
              real a(10), s
              n = 4
              s = 0.0
              do i = 1, n
                a(i) = i * i
              end do
              do i = 1, n
                s = s + a(i)
              end do
              write s
            end
            """
        )
        assert run_program(program).output == [1 + 4 + 9 + 16]

    def test_operator_precedence_preserved(self):
        program = lower("x = 2 + 3 * 4\nwrite x")
        assert run_program(program).output == [14]

    def test_power(self):
        program = lower("x = 2 ** 3 ** 2\nwrite x")
        assert run_program(program).output == [512]

    def test_if_semantics(self):
        program = lower(
            "x = 5\nif (x >= 5) then\n  y = 1\nelse\n  y = 2\nend if\nwrite y"
        )
        assert run_program(program).output == [1]

    def test_structure_validated(self):
        program = lower("do i = 1, n\n  x = 1\nend do")
        program.check_structure()


class TestDoVariableRules:
    def test_assigning_active_lcv_rejected(self):
        with pytest.raises(FrontendError):
            lower("do i = 1, 3\n  i = 5\nend do")

    def test_reusing_active_lcv_rejected(self):
        with pytest.raises(FrontendError):
            lower("do i = 1, 3\n  do i = 1, 2\n    x = 1\n  end do\nend do")

    def test_reusing_lcv_sequentially_is_fine(self):
        program = lower(
            "do i = 1, 3\n  x = i\nend do\ndo i = 1, 2\n  y = i\nend do"
        )
        assert len(program) == 6
