"""Unit tests for the mini-Fortran parser."""

import pytest

from repro.frontend.ast import (
    Assign,
    Bin,
    Call,
    Do,
    If,
    Index,
    Name,
    Num,
    Read,
    Un,
    Write,
)
from repro.frontend.errors import FrontendError
from repro.frontend.parser import parse_source


def parse_body(statements, decls="  integer i, j, n\n  real a(10), x, y"):
    return parse_source(
        f"program t\n{decls}\n{statements}\nend\n"
    ).body


class TestProgramStructure:
    def test_name_and_sections(self):
        program = parse_source(
            "program demo\n  integer i\n  x = 1\nend"
        )
        assert program.name == "demo"
        assert len(program.decls) == 1
        assert len(program.body) == 1

    def test_declarations_with_dims(self):
        program = parse_source(
            "program t\n  real a(10,20), x\n  x = 1\nend"
        )
        assert program.decls[0].names == [("a", (10, 20)), ("x", ())]
        assert program.array_names() == frozenset({"a"})

    def test_integer_names(self):
        program = parse_source(
            "program t\n  integer i, k\n  real x\n  x = 1\nend"
        )
        assert program.integer_names() == frozenset({"i", "k"})

    def test_missing_program_keyword(self):
        with pytest.raises(FrontendError):
            parse_source("x = 1\nend")

    def test_text_after_end_rejected(self):
        with pytest.raises(FrontendError):
            parse_source("program t\n  x = 1\nend\ny = 2")

    def test_symbolic_dims_rejected(self):
        with pytest.raises(FrontendError):
            parse_source("program t\n  real a(n)\n  x = 1\nend")


class TestStatements:
    def test_assignment(self):
        (stmt,) = parse_body("x = 1")
        assert isinstance(stmt, Assign)
        assert stmt.target == Name("x")
        assert stmt.value == Num(1)

    def test_array_assignment(self):
        (stmt,) = parse_body("a(i) = x")
        assert isinstance(stmt.target, Index)
        assert stmt.target.args == (Name("i"),)

    def test_do_loop(self):
        (stmt,) = parse_body("do i = 1, n\n  x = i\nend do")
        assert isinstance(stmt, Do)
        assert stmt.var == "i"
        assert stmt.step is None
        assert len(stmt.body) == 1

    def test_do_loop_with_step_and_enddo(self):
        (stmt,) = parse_body("do i = 1, 10, 2\n  x = i\nenddo")
        assert stmt.step == Num(2)

    def test_if_then(self):
        (stmt,) = parse_body("if (x > 0) then\n  y = 1\nend if")
        assert isinstance(stmt, If)
        assert stmt.relop == ">"
        assert stmt.else_body == []

    def test_if_else_endif(self):
        (stmt,) = parse_body(
            "if (x /= y) then\n  x = 1\nelse\n  x = 2\nendif"
        )
        assert stmt.relop == "!="
        assert len(stmt.else_body) == 1

    def test_read_write(self):
        stmts = parse_body("read x\nwrite a(i)")
        assert isinstance(stmts[0], Read)
        assert isinstance(stmts[1], Write)
        assert isinstance(stmts[1].value, Index)

    def test_nested_structures(self):
        (outer,) = parse_body(
            "do i = 1, n\n  do j = 1, n\n    if (i < j) then\n"
            "      a(i) = j\n    end if\n  end do\nend do"
        )
        inner = outer.body[0]
        assert isinstance(inner, Do)
        assert isinstance(inner.body[0], If)

    def test_unclosed_do_rejected(self):
        with pytest.raises(FrontendError):
            parse_body("do i = 1, n\n  x = 1")

    def test_missing_then_rejected(self):
        with pytest.raises(FrontendError):
            parse_body("if (x > 0)\n  y = 1\nend if")

    def test_missing_relop_rejected(self):
        with pytest.raises(FrontendError):
            parse_body("if (x) then\n  y = 1\nend if")


class TestExpressions:
    def expr(self, text):
        (stmt,) = parse_body(f"x = {text}")
        return stmt.value

    def test_precedence_mul_over_add(self):
        tree = self.expr("1 + 2 * 3")
        assert isinstance(tree, Bin) and tree.op == "+"
        assert isinstance(tree.right, Bin) and tree.right.op == "*"

    def test_left_associativity(self):
        tree = self.expr("8 - 3 - 1")
        assert tree.op == "-"
        assert isinstance(tree.left, Bin)
        assert tree.right == Num(1)

    def test_power_right_associative(self):
        tree = self.expr("2 ** 3 ** 2")
        assert tree.op == "**"
        assert isinstance(tree.right, Bin)

    def test_parentheses(self):
        tree = self.expr("(1 + 2) * 3")
        assert tree.op == "*"
        assert isinstance(tree.left, Bin) and tree.left.op == "+"

    def test_unary_minus(self):
        tree = self.expr("-y")
        assert isinstance(tree, Un) and tree.op == "-"

    def test_intrinsic_call(self):
        tree = self.expr("sqrt(y)")
        assert isinstance(tree, Call) and tree.func == "sqrt"

    def test_mod_call_two_args(self):
        tree = self.expr("mod(i, 2)")
        assert isinstance(tree, Call)
        assert len(tree.args) == 2

    def test_array_reference_vs_call(self):
        tree = self.expr("a(i + 1)")
        assert isinstance(tree, Index)
        assert isinstance(tree.args[0], Bin)

    def test_multidim_reference(self):
        tree = self.expr("a(i, j)")
        assert tree.args == (Name("i"), Name("j"))

    def test_garbage_expression_rejected(self):
        with pytest.raises(FrontendError):
            parse_body("x = * 2")
