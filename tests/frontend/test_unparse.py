"""Tests for the unparser (IR back to mini-Fortran)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.ir.builder import IRBuilder
from repro.ir.interp import run_program
from repro.workloads.suite import full_suite
from repro.workloads.synthetic import random_program


def roundtrip(program, inputs=()):
    text = unparse_program(program)
    reparsed = parse_program(text)
    before = run_program(program, inputs=inputs).observable()
    after = run_program(reparsed, inputs=inputs).observable()
    return text, before, after


class TestShapes:
    def test_simple_statements(self):
        b = IRBuilder()
        b.assign("x", 1)
        b.binary("y", "x", "+", 2)
        b.unary("z", "sqrt", "y")
        b.write("z")
        text = unparse_program(b.build())
        assert "x = 1" in text
        assert "y = x + 2" in text
        assert "z = sqrt(y)" in text

    def test_mod_call(self):
        b = IRBuilder()
        b.binary("x", 7, "mod", 3)
        text = unparse_program(b.build())
        assert "x = mod(7, 3)" in text

    def test_negative_constant_parenthesized(self):
        b = IRBuilder()
        b.assign("x", -3)
        assert "x = (-3)" in unparse_program(b.build())

    def test_loop_and_if(self):
        b = IRBuilder()
        with b.loop("i", 1, 5, step=2):
            with b.if_("i", ">", 2):
                b.assign("x", "i")
        text = unparse_program(b.build())
        assert "do i = 1, 5, 2" in text
        assert "if (i > 2) then" in text
        assert "end if" in text and "end do" in text

    def test_doall_becomes_commented_do(self):
        b = IRBuilder()
        with b.loop("i", 1, 4, parallel=True):
            b.assign(b.arr("a", "i"), 0)
        b.write(b.arr("a", 2))
        text = unparse_program(b.build())
        assert "! parallel" in text
        parse_program(text)  # stays reparsable

    def test_subscript_rendering(self):
        from repro.ir.types import Affine

        b = IRBuilder()
        b.assign(b.arr("a", Affine.of(-1, i=2)), 1)
        text = unparse_program(b.build())
        assert "a(2 * i - 1)" in text

    def test_declarations_reconstructed(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            b.assign(b.arr("a", "i"), "x")
        b.write(b.arr("a", 2))
        text = unparse_program(b.build())
        assert "integer i" in text
        assert "a(64)" in text


class TestRoundTrip:
    def test_workloads_roundtrip(self, suite):
        for item in suite:
            text, before, after = roundtrip(item.load(), item.inputs)
            assert before == after, item.name

    def test_optimized_workload_roundtrips(self, optimizers, suite_by_name):
        from repro.genesis.driver import DriverOptions, run_optimizer

        program = suite_by_name["fft"].load()
        run_optimizer(optimizers["CTP"], program,
                      DriverOptions(apply_all=True))
        run_optimizer(optimizers["PAR"], program,
                      DriverOptions(apply_all=True))
        _text, before, after = roundtrip(
            program, suite_by_name["fft"].inputs
        )
        assert before == after

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_random_programs_roundtrip(self, seed):
        program = random_program(seed, size=12, max_depth=3)
        _text, before, after = roundtrip(program)
        assert before == after


class TestSessionSave:
    def test_save_command_writes_source(self, tmp_path, optimizers):
        from repro.genesis.session import OptimizerSession

        session = OptimizerSession.from_source(
            "program t\n  integer a, b\n  a = 6\n  b = a * 7\n  write b\nend",
            optimizers=[optimizers["CTP"], optimizers["CFO"]],
        )
        session.execute_command("apply CTP all")
        session.execute_command("apply CFO all")
        target = tmp_path / "out.f"
        session.execute_command(f"save {target}")
        text = target.read_text()
        assert "b = 42" in text
        reparsed = parse_program(text)
        assert run_program(reparsed).output == [42]


class TestDriverValidate:
    def test_validate_option_accepts_good_transformations(self, optimizers):
        from repro.genesis.driver import DriverOptions, run_optimizer

        program = parse_program(
            "program t\n  integer a, b\n  a = 6\n  b = a * 7\n  write b\nend"
        )
        result = run_optimizer(
            optimizers["CTP"], program,
            DriverOptions(apply_all=True, validate=True),
        )
        assert result.applied == 1
