"""Tests for the 'all' quantifier: collecting elements and iterating
them in actions — the paper's "all returns ... all the elements"."""

from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    find_application_points,
    run_optimizer,
)
from repro.genesis.generator import generate_optimizer
from repro.ir.interp import same_behaviour
from repro.ir.printer import format_program

COLLECT = """
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    all Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
"""

#: constant propagation written with 'all': collect every use, rewrite
#: them in one application, then remove the dead definition
CTP_ALL = """
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const AND
            type(Si.opr_1) == var;
  Depend
    no (Sl, pos): flow_dep(Sl, Si) AND (Si != Sl);
    all Sj: flow_dep(Si, Sj, (=));
ACTION
  forall (Su, posu) in uses(Si.opr_1, Sj) {
    modify(operand(Su, posu), Si.opr_2);
  }
"""


def test_all_binds_a_tuple():
    optimizer = generate_optimizer(COLLECT, name="ALLT")
    program = parse_program(
        "program t\n  integer x, a, b\n  x = 1\n  a = x\n  b = x\n"
        "  write a\n  write b\nend"
    )
    points = find_application_points(optimizer, program)
    collected = [point["Sj"] for point in points if point["Si"] == 0]
    assert collected == [(1, 2)]


def test_all_with_no_matches_binds_empty():
    optimizer = generate_optimizer(COLLECT, name="ALLT")
    program = parse_program(
        "program t\n  integer x\n  x = 1\n  write 9\nend"
    )
    points = find_application_points(optimizer, program)
    assert [point["Sj"] for point in points] == [()]


def test_forall_over_collected_set():
    # the declared no-other-defs guard makes the rewrite sound; one
    # application rewrites every use at once
    optimizer = generate_optimizer(CTP_ALL, name="CTPALL")
    program = parse_program(
        "program t\n  integer x, a, b\n  x = 7\n  a = x + 1\n  b = x + 2\n"
        "  write a\n  write b\nend"
    )
    original = program.clone()
    result = run_optimizer(optimizer, program, DriverOptions())
    assert result.applied == 1
    text = format_program(program)
    assert "7 + 1" in text and "7 + 2" in text
    assert same_behaviour(original, program)
