"""Unit tests for the code generator's emitted source (paper Figure 6)."""

import pytest

from repro.genesis.codegen import CodegenError, generate_source
from repro.genesis.strategy import StrategyPolicy
from repro.gospel.parser import parse_spec
from repro.gospel.sema import analyze_spec
from repro.opts.specs import CTP, INX, LUR, STANDARD_SPECS


def emit(source, name="OPT", policy=StrategyPolicy.HEURISTIC):
    return generate_source(analyze_spec(parse_spec(source, name=name)),
                           policy=policy)


class TestStructure:
    def test_four_procedures_and_call_interface(self):
        generated = emit(CTP, name="CTP")
        for procedure in ("set_up_CTP", "match_CTP", "pre_CTP", "act_CTP",
                          "set_up_OPT", "match_OPT", "pre_OPT", "act_OPT"):
            assert f"def {procedure}(ctx):" in generated.source

    def test_set_up_declares_stlp_entries(self):
        generated = emit(CTP, name="CTP")
        assert "ctx.declare('Si', 'Stmt')" in generated.source
        assert "ctx.declare('Sl', 'Stmt')" in generated.source

    def test_match_enumerates_statements(self):
        generated = emit(CTP, name="CTP")
        # the seed scan carries a shape hint derived from the clause
        # format (constant-RHS assignment buckets of the match index)
        assert "lib.statements(ctx, shape=('assign:const',))" in (
            generated.source
        )
        assert "ctx.bind('Si'" in generated.source

    def test_pattern_checks_use_compare(self):
        generated = emit(CTP, name="CTP")
        assert "lib.compare(ctx, '=='" in generated.source

    def test_pre_binds_position(self):
        generated = emit(CTP, name="CTP")
        assert "PosBinding(_edge.dst_pos, _edge.var)" in generated.source

    def test_pos_unification_filter(self):
        generated = emit(CTP, name="CTP")
        assert "_pb = ctx.get('pos')" in generated.source
        assert "_edge.dst_pos == _pb.pos" in generated.source

    def test_no_clause_guarded_by_restrictions_flag(self):
        generated = emit(CTP, name="CTP")
        assert "ctx.enforce_restrictions" in generated.source

    def test_source_compiles(self):
        generated = emit(CTP, name="CTP")
        compile(generated.source, "<test>", "exec")

    def test_every_catalog_spec_compiles(self):
        for name, source in STANDARD_SPECS.items():
            generated = emit(source, name=name)
            compile(generated.source, "<test>", "exec")

    def test_sanitized_names(self):
        generated = emit(CTP, name="my-opt 1")
        assert "def set_up_my_opt_1(ctx):" in generated.source

    def test_numeric_leading_name(self):
        generated = emit(CTP, name="1CTP")
        assert "def set_up_OPT_1CTP" in generated.source


class TestPairsAndLoops:
    def test_tight_pair_enumeration(self):
        generated = emit(INX, name="INX")
        assert "lib.tight_loop_pairs(ctx)" in generated.source
        assert "ctx.bind('L1', _pair0[0])" in generated.source
        assert "ctx.bind('L2', _pair0[1])" in generated.source

    def test_chained_pair_filters_on_bound_element(self):
        generated = emit(STANDARD_SPECS["CRC"], name="CRC")
        assert "_pair1[0].head != ctx.get_qid('L2')" in generated.source

    def test_anchored_dependence_queries(self):
        generated = emit(INX, name="INX")
        assert "anchor=ctx.get('L2')" in generated.source


class TestStrategies:
    def test_forced_members_uses_domain_loops(self):
        generated = emit(INX, name="INX", policy=StrategyPolicy.FORCE_MEMBERS)
        methods = [s.method for s in generated.strategies]
        assert "members" in methods
        assert "lib.loop_body(ctx, ctx.get_qid('L2'))" in generated.source

    def test_forced_deps_uses_edge_union(self):
        generated = emit(INX, name="INX", policy=StrategyPolicy.FORCE_DEPS)
        assert "lib.dep_candidates(ctx," in generated.source

    def test_strategy_metadata_recorded(self):
        generated = emit(CTP, name="CTP")
        assert len(generated.strategies) == 2
        assert all(s.method == "deps" for s in generated.strategies)


class TestActions:
    def test_delete_compiles(self):
        generated = emit(STANDARD_SPECS["DCE"], name="DCE")
        assert "lib.act_delete(ctx, ctx.get('Si'))" in generated.source

    def test_modify_attr_compiles(self):
        generated = emit(STANDARD_SPECS["PAR"], name="PAR")
        assert "lib.act_modify_attr(ctx," in generated.source
        assert "'doall'" in generated.source

    def test_forall_range_and_block_copy(self):
        generated = emit(LUR, name="LUR")
        assert "lib.range_values(ctx," in generated.source
        assert "lib.act_copy(ctx," in generated.source
        assert "lib.uses_in(ctx," in generated.source

    def test_add_template(self):
        generated = emit(STANDARD_SPECS["BMP"], name="BMP")
        assert "lib.build_stmt(ctx, ctx.fresh_temp(), 'add'" in (
            generated.source
        )
        assert "lib.act_add(ctx," in generated.source

    def test_arithmetic_in_action_values(self):
        generated = emit(STANDARD_SPECS["BMP"], name="BMP")
        assert "lib.arith(ctx, '-'" in generated.source

    def test_where_clause_compiles(self):
        generated = emit(STANDARD_SPECS["BMP"], name="BMP")
        assert "if not (lib.compare(ctx, '!='" in generated.source


class TestErrors:
    def test_all_with_multiple_vars_rejected(self):
        source = """
        TYPE
          Stmt: Si, Sm, Sn;
        PRECOND
          Code_Pattern
            any Si;
          Depend
            all Sm, Sn: flow_dep(Sm, Sn);
        ACTION
          delete(Si);
        """
        with pytest.raises(CodegenError):
            emit(source)

    def test_modify_of_unmodifiable_attribute(self):
        source = """
        TYPE
          Stmt: Si;
        PRECOND
          Code_Pattern
            any Si;
          Depend
        ACTION
          modify(Si.next, Si.opr_2);
        """
        with pytest.raises(CodegenError):
            emit(source)
