"""Tests for the on-disk constructor (paper Figure 4, step 3)."""

import json
import subprocess
import sys

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.constructor import (
    ConstructorError,
    construct_package,
    load_package,
)
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.generator import generate_optimizer
from repro.ir.printer import format_program

SOURCE = "program p\n  integer a, b\n  a = 6\n  b = a * 7\n  write b\nend\n"


@pytest.fixture()
def package(tmp_path):
    return construct_package(["CTP", "CFO", "DCE"], tmp_path / "myopt")


class TestConstruction:
    def test_writes_expected_files(self, package):
        names = {p.name for p in package.iterdir()}
        assert {"__main__.py", "manifest.json", "opt_ctp.py",
                "opt_cfo.py", "opt_dce.py"} <= names

    def test_manifest_carries_specs(self, package):
        manifest = json.loads((package / "manifest.json").read_text())
        assert set(manifest) == {"CTP", "CFO", "DCE"}
        assert "Code_Pattern" in manifest["CTP"]["spec"]

    def test_module_contains_generated_source(self, package):
        text = (package / "opt_ctp.py").read_text()
        assert "def act_CTP(ctx):" in text
        assert "def pre_OPT(ctx):" in text  # the call interface ships too

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ConstructorError):
            construct_package(["NOPE"], tmp_path / "x")

    def test_accepts_prebuilt_optimizers(self, tmp_path):
        custom = generate_optimizer(
            """
            TYPE
              Stmt: Si;
            PRECOND
              Code_Pattern
                any Si: Si.opc == mul AND Si.opr_3 == 1;
              Depend
            ACTION
              modify(Si.opc, assign);
              modify(Si.opr_3, none);
            """,
            name="MUL1",
        )
        package = construct_package([custom], tmp_path / "custom")
        loaded = load_package(package)
        assert "MUL1" in loaded


class TestLoading:
    def test_loaded_optimizers_run(self, package):
        optimizers = load_package(package)
        program = parse_program(SOURCE)
        for name in ("CTP", "CFO", "DCE"):
            run_optimizer(optimizers[name], program,
                          DriverOptions(apply_all=True))
        assert "b := 42" in format_program(program)

    def test_loaded_matches_in_memory(self, package, optimizers):
        from repro.genesis.driver import find_application_points

        loaded = load_package(package)
        program = parse_program(SOURCE)
        direct = find_application_points(optimizers["CTP"], program.clone())
        from_disk = find_application_points(loaded["CTP"], program.clone())
        assert [sorted(map(str, p.values())) for p in direct] == [
            sorted(map(str, p.values())) for p in from_disk
        ]

    def test_editing_the_module_changes_behaviour(self, package):
        """The disk bytes are what runs: break them, see it fail."""
        module = package / "opt_ctp.py"
        module.write_text(
            module.read_text().replace("yield True", "return\n        yield True", 1)
        )
        loaded = load_package(package)
        program = parse_program(SOURCE)
        result = run_optimizer(loaded["CTP"], program)
        assert result.applied == 0  # the sabotaged matcher finds nothing

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ConstructorError):
            load_package(tmp_path)


class TestCommandLine:
    def test_package_main_runs(self, package, tmp_path):
        source = tmp_path / "p.f"
        source.write_text(SOURCE)
        completed = subprocess.run(
            [sys.executable, str(package), str(source), "--show"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "b := 42" in completed.stdout

    def test_genesis_construct_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "pkg"
        assert main(["construct", str(target), "--opts", "CTP"]) == 0
        out = capsys.readouterr().out
        assert "constructed optimizer package" in out
        assert (target / "opt_ctp.py").exists()
