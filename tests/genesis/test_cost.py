"""Unit tests for cost counters."""

from repro.genesis.cost import ApplicationRecord, CostCounters


def test_total_sums_everything():
    counters = CostCounters(pattern_checks=1, dep_checks=2, mem_checks=3,
                            candidates=4, action_ops=5)
    assert counters.precondition_checks() == 10
    assert counters.total() == 15


def test_snapshot_is_independent():
    counters = CostCounters(pattern_checks=1)
    snapshot = counters.snapshot()
    counters.pattern_checks += 5
    assert snapshot.pattern_checks == 1


def test_minus_computes_delta():
    counters = CostCounters(pattern_checks=7, action_ops=2)
    earlier = CostCounters(pattern_checks=3)
    delta = counters.minus(earlier)
    assert delta.pattern_checks == 4
    assert delta.action_ops == 2


def test_add_accumulates():
    counters = CostCounters(dep_checks=1)
    counters.add(CostCounters(dep_checks=2, mem_checks=3))
    assert counters.dep_checks == 3
    assert counters.mem_checks == 3


def test_as_dict_and_str():
    counters = CostCounters(pattern_checks=2)
    data = counters.as_dict()
    assert data["pattern_checks"] == 2
    assert data["total"] == counters.total()
    assert "pattern=2" in str(counters)


def test_application_record_str():
    record = ApplicationRecord(opt_name="CTP", bindings={"Si": 3})
    assert "CTP" in str(record)
    assert "Si=3" in str(record)
