"""Unit tests for the standard driver (paper Figure 5)."""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.ir.printer import format_program

SOURCE = """
program t
  integer a, b, c, d
  a = 1
  b = a + 2
  c = a + 3
  d = b + c
  write d
end
"""


@pytest.fixture()
def program():
    return parse_program(SOURCE)


class TestFindPoints:
    def test_points_without_applying(self, optimizers, program):
        before = format_program(program)
        points = find_application_points(optimizers["CTP"], program)
        assert len(points) == 2  # a's two uses
        assert format_program(program) == before

    def test_points_carry_bindings(self, optimizers, program):
        points = find_application_points(optimizers["CTP"], program)
        assert all({"Si", "Sj", "pos"} <= set(p) for p in points)

    def test_limit(self, optimizers, program):
        points = find_application_points(
            optimizers["CTP"], program, limit=1
        )
        assert len(points) == 1


class TestRunOptimizer:
    def test_apply_once(self, optimizers, program):
        result = run_optimizer(optimizers["CTP"], program)
        assert result.applied == 1

    def test_apply_all_reaches_fixpoint(self, optimizers, program):
        result = run_optimizer(
            optimizers["CTP"], program, DriverOptions(apply_all=True)
        )
        assert result.applied == 2
        assert "a + 2" not in format_program(program)
        assert "1 + 2" in format_program(program)

    def test_enabling_chain_within_one_optimizer(self, optimizers):
        # propagating x=1 into y:=x makes y:=1 constant, enabling more CTP
        chain = parse_program(
            """
            program t
              integer x, y, z
              x = 1
              y = x
              z = y
              write z
            end
            """
        )
        result = run_optimizer(
            optimizers["CTP"], chain, DriverOptions(apply_all=True)
        )
        assert result.applied == 3  # y:=x, z:=y, write z all chase the chain

    def test_max_applications_bound(self, optimizers, program):
        result = run_optimizer(
            optimizers["CTP"], program,
            DriverOptions(apply_all=True, max_applications=1),
        )
        assert result.applied == 1

    def test_point_filter(self, optimizers, program):
        c_qid = program[2].qid
        result = run_optimizer(
            optimizers["CTP"], program,
            DriverOptions(
                apply_all=True,
                point_filter=lambda b: b.get("Sj") == c_qid,
            ),
        )
        assert result.applied == 1
        assert "a + 2" in format_program(program)  # b untouched

    def test_counters_accumulate(self, optimizers, program):
        result = run_optimizer(
            optimizers["CTP"], program, DriverOptions(apply_all=True)
        )
        assert result.counters.pattern_checks > 0
        assert result.counters.action_ops == result.applied
        assert result.counters.total() > result.counters.action_ops

    def test_stale_graph_mode_still_terminates(self, optimizers, program):
        result = run_optimizer(
            optimizers["CTP"], program,
            DriverOptions(apply_all=True, recompute_dependences=False),
        )
        assert result.applied >= 1

    def test_result_str(self, optimizers, program):
        result = run_optimizer(optimizers["CTP"], program)
        assert "CTP" in str(result)


class TestApplyAtPoint:
    def test_selects_nth_point(self, optimizers, program):
        result = apply_at_point(optimizers["CTP"], program, 1)
        assert result.applied == 1
        text = format_program(program)
        assert "a + 2" in text  # first point untouched
        assert "1 + 3" in text  # second point applied

    def test_out_of_range_is_noop(self, optimizers, program):
        before = format_program(program)
        result = apply_at_point(optimizers["CTP"], program, 99)
        assert result.applied == 0
        assert format_program(program) == before


class TestOverrideRestrictions:
    def test_override_ignores_no_clauses(self, optimizers):
        # two defs reach the use: CTP normally refuses
        program = parse_program(
            """
            program t
              integer x, y
              x = 1
              if (y > 0) then
                x = 2
              end if
              y = x
              write y
            end
            """
        )
        assert find_application_points(optimizers["CTP"], program) == []
        forced = find_application_points(
            optimizers["CTP"], program, enforce_restrictions=False
        )
        assert forced  # the user may override (and take the blame)

    def test_override_application(self, optimizers):
        program = parse_program(
            """
            program t
              integer x, y
              x = 1
              if (y > 0) then
                x = 2
              end if
              y = x
              write y
            end
            """
        )
        result = apply_at_point(
            optimizers["CTP"], program, 0, enforce_restrictions=False
        )
        assert result.applied == 1
