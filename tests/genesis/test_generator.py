"""Unit tests for the generator front half (Figure 4, step 2)."""

import pytest

from repro.genesis.generator import generate_from_spec, generate_optimizer
from repro.genesis.strategy import StrategyPolicy
from repro.gospel.parser import parse_spec
from repro.opts.specs import CTP, STANDARD_SPECS


class TestGeneration:
    def test_callables_are_executable(self):
        optimizer = generate_optimizer(CTP, name="CTP")
        assert callable(optimizer.set_up)
        assert callable(optimizer.match)
        assert callable(optimizer.pre)
        assert callable(optimizer.act)

    def test_source_is_kept(self):
        optimizer = generate_optimizer(CTP, name="CTP")
        assert "def act_CTP(ctx):" in optimizer.source

    def test_generate_from_parsed_spec(self):
        spec = parse_spec(CTP, name="CTP")
        optimizer = generate_from_spec(spec)
        assert optimizer.name == "CTP"
        assert optimizer.spec is spec

    def test_policy_recorded(self):
        optimizer = generate_optimizer(
            STANDARD_SPECS["PAR"], name="PAR",
            policy=StrategyPolicy.FORCE_DEPS,
        )
        assert optimizer.policy is StrategyPolicy.FORCE_DEPS

    def test_describe_mentions_clauses(self):
        optimizer = generate_optimizer(CTP, name="CTP")
        text = optimizer.describe()
        assert "CTP" in text and "pattern clause" in text

    def test_action_names_exposed(self):
        optimizer = generate_optimizer(CTP, name="CTP")
        assert {"Si", "Sj", "pos"} <= set(optimizer.action_names)

    def test_syntax_error_propagates(self):
        from repro.gospel.errors import GospelError

        with pytest.raises(GospelError):
            generate_optimizer("TYPE banana", name="BAD")

    def test_generated_module_is_self_contained(self):
        # exec'ing the source into a fresh namespace yields working code
        optimizer = generate_optimizer(CTP, name="CTP")
        namespace: dict = {}
        exec(compile(optimizer.source, "<x>", "exec"), namespace)
        assert "pre_OPT" in namespace
