"""Unit tests for the optimizer library (runtime routines)."""

import pytest

from repro.analysis.dependence import compute_dependences
from repro.genesis import library as lib
from repro.genesis.library import (
    GenesisRuntimeError,
    LoopBinding,
    MatchContext,
    PosBinding,
)
from repro.ir.builder import IRBuilder
from repro.ir.quad import Opcode
from repro.ir.types import Const, Var


def context_for(builder):
    program = builder.build()
    return MatchContext(program, compute_dependences(program))


def loop_program():
    b = IRBuilder()
    b.assign("n", 5)
    with b.loop("i", 1, "n") as head:
        body = b.binary(b.arr("a", "i"), b.arr("a", "i"), "+", 1)
    b.write(b.arr("a", 2))
    return b, head, body


class TestContext:
    def test_bind_get_unbind(self):
        ctx = context_for(loop_program()[0])
        ctx.bind("Si", 3)
        assert ctx.get("Si") == 3
        ctx.unbind("Si")
        with pytest.raises(GenesisRuntimeError):
            ctx.get("Si")

    def test_get_qid_unwraps_loops(self):
        ctx = context_for(loop_program()[0])
        ctx.bind("L1", LoopBinding(head=1, end=3))
        assert ctx.get_qid("L1") == 1

    def test_get_qid_rejects_non_statement(self):
        ctx = context_for(loop_program()[0])
        ctx.bind("pos", PosBinding("a", "x"))
        with pytest.raises(GenesisRuntimeError):
            ctx.get_qid("pos")

    def test_fresh_temp_avoids_existing_names(self):
        ctx = context_for(loop_program()[0])
        first = ctx.fresh_temp()
        second = ctx.fresh_temp()
        assert first != second
        assert first.name not in ctx.program.scalar_names()


class TestEnumeration:
    def test_statements_counts_candidates(self):
        builder, _h, _b = loop_program()
        ctx = context_for(builder)
        list(lib.statements(ctx))
        assert ctx.counters.candidates == len(ctx.program)

    def test_loops_yield_bindings(self):
        builder, head, _b = loop_program()
        ctx = context_for(builder)
        found = list(lib.loops(ctx))
        assert found == [LoopBinding(head=head.qid, end=head.qid + 2)]

    def test_tight_pairs(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            with b.loop("j", 1, 3):
                b.assign("x", 1)
        ctx = context_for(b)
        pairs = list(lib.tight_loop_pairs(ctx))
        assert len(pairs) == 1
        outer, inner = pairs[0]
        assert outer.head < inner.head


class TestAttributes:
    def test_stmt_attrs(self):
        builder, _h, body = loop_program()
        ctx = context_for(builder)
        assert lib.stmt_attr(ctx, 0, "opc") == "assign"
        assert lib.stmt_attr(ctx, 0, "opr_1") == Var("n")
        assert lib.stmt_attr(ctx, 0, "opr_2") == Const(5)
        assert lib.stmt_attr(ctx, 0, "next") == 1
        assert lib.stmt_attr(ctx, 1, "prev") == 0

    def test_prev_at_start_raises(self):
        ctx = context_for(loop_program()[0])
        with pytest.raises(GenesisRuntimeError):
            lib.stmt_attr(ctx, 0, "prev")

    def test_loop_attrs(self):
        builder, head, body = loop_program()
        ctx = context_for(builder)
        binding = list(lib.loops(ctx))[0]
        assert lib.loop_attr(ctx, binding, "head") == head.qid
        assert lib.loop_attr(ctx, binding, "lcv") == Var("i")
        assert lib.loop_attr(ctx, binding, "init") == Const(1)
        assert lib.loop_attr(ctx, binding, "final") == Var("n")
        assert lib.loop_attr(ctx, binding, "body") == (body.qid,)

    def test_eval_ref_chains(self):
        builder, head, _body = loop_program()
        ctx = context_for(builder)
        ctx.bind("L1", list(lib.loops(ctx))[0])
        assert lib.eval_ref(ctx, "L1", ("head",)) == head.qid
        assert lib.eval_ref(ctx, "L1", ("head", "prev")) == 0
        assert lib.eval_ref(ctx, "L1", ("lcv",)) == Var("i")

    def test_eval_ref_of_operand_attribute_rejected(self):
        ctx = context_for(loop_program()[0])
        ctx.bind("Si", 0)
        with pytest.raises(GenesisRuntimeError):
            lib.eval_ref(ctx, "Si", ("opr_1", "opc"))


class TestValueFunctions:
    def test_kind_of(self):
        assert lib.kind_of(Const(1)) == "const"
        assert lib.kind_of(Var("x")) == "var"
        assert lib.kind_of(None) == "none"

    def test_class_of(self):
        builder, head, body = loop_program()
        ctx = context_for(builder)
        assert lib.class_of(ctx, 0) == "assign"
        assert lib.class_of(ctx, head.qid) == "loop_head"
        assert lib.class_of(ctx, body.qid) == "binop"

    def test_trip_of(self):
        b = IRBuilder()
        with b.loop("i", 2, 9, step=2) as head:
            b.assign("x", 1)
        ctx = context_for(b)
        assert lib.trip_of(ctx, head.qid) == 4

    def test_value_of_folds_constants(self):
        b = IRBuilder()
        stmt = b.binary("x", 6, "*", 7)
        ctx = context_for(b)
        assert lib.value_of(ctx, stmt.qid) == Const(42)

    def test_value_of_non_constant_raises(self):
        b = IRBuilder()
        stmt = b.binary("x", "y", "*", 7)
        ctx = context_for(b)
        with pytest.raises(GenesisRuntimeError):
            lib.value_of(ctx, stmt.qid)

    def test_operand_at_with_pos_binding(self):
        b = IRBuilder()
        stmt = b.binary("x", "y", "+", 2)
        ctx = context_for(b)
        assert lib.operand_at(ctx, stmt.qid, PosBinding("b", "y")) == Const(2)


class TestCompare:
    def ctx(self):
        return context_for(loop_program()[0])

    def test_symbols(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", "assign", "assign")
        assert lib.compare(ctx, "!=", "assign", "+")

    def test_compute_class_symbol(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", "binop", "compute")
        assert lib.compare(ctx, "==", "compute", "assign")
        assert not lib.compare(ctx, "==", "loop_head", "compute")

    def test_opcode_aliases(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", "+", "add")
        assert lib.compare(ctx, "==", "div", "/")

    def test_operand_equality(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", Var("x"), Var("x"))
        assert lib.compare(ctx, "!=", Var("x"), Var("y"))

    def test_constant_ordering(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "<", Const(1), Const(2))
        assert lib.compare(ctx, "!=", Const(1), 2)
        assert lib.compare(ctx, "==", Const(1), 1)

    def test_none_comparisons(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", None, None)
        assert lib.compare(ctx, "!=", None, Const(1)) or True  # operand path
        assert not lib.compare(ctx, "<", None, 3)

    def test_type_vs_symbol(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "==", Var("x"), "var")
        assert lib.compare(ctx, "==", None, "none")

    def test_statement_identity(self):
        ctx = self.ctx()
        assert lib.compare(ctx, "!=", 1, 2)
        assert lib.compare(ctx, "==", 3, 3)

    def test_counts_pattern_checks(self):
        ctx = self.ctx()
        before = ctx.counters.pattern_checks
        lib.compare(ctx, "==", 1, 1)
        assert ctx.counters.pattern_checks == before + 1


class TestDependenceRoutines:
    def flow_ctx(self):
        b = IRBuilder()
        d = b.assign("x", 1)
        u = b.assign("y", "x")
        ctx = context_for(b)
        return ctx, d, u

    def test_dep_exists(self):
        ctx, d, u = self.flow_ctx()
        assert lib.dep_exists(ctx, "flow", d.qid, u.qid)
        assert not lib.dep_exists(ctx, "flow", u.qid, d.qid)

    def test_dep_exists_with_pos(self):
        ctx, d, u = self.flow_ctx()
        good = PosBinding("a", "x")
        bad = PosBinding("b", "x")
        assert lib.dep_exists(ctx, "flow", d.qid, u.qid, dst_pos=good)
        assert not lib.dep_exists(ctx, "flow", d.qid, u.qid, dst_pos=bad)

    def test_deps_from_and_to(self):
        ctx, d, u = self.flow_ctx()
        assert [e.dst for e in lib.deps_from(ctx, "flow", d.qid)] == [u.qid]
        assert [e.src for e in lib.deps_to(ctx, "flow", u.qid)] == [d.qid]

    def test_figure7_dep_routine(self):
        ctx, d, u = self.flow_ctx()
        assert lib.dep(ctx, "IF", "flow", d.qid, u.qid) == 1
        assert lib.dep(ctx, "IF", "flow", u.qid, d.qid) == 0
        assert lib.dep(ctx, "LST", "flow", d.qid, None) == u.qid
        assert lib.dep(ctx, "LST", "flow", None, u.qid) == d.qid

    def test_figure7_lst_no_match_returns_zero(self):
        ctx, d, u = self.flow_ctx()
        assert lib.dep(ctx, "LST", "anti", d.qid, None) == 0

    def test_dep_candidates_union(self):
        b = IRBuilder()
        use = b.assign("y", "x")
        redef = b.assign("x", 1)
        use2 = b.assign("z", "x")
        ctx = context_for(b)
        specs = [("flow", None), ("anti", None)]
        kinds = {e.kind for e in lib.dep_candidates(ctx, specs)}
        assert kinds == {"flow", "anti"}

    def test_counts_dep_checks(self):
        ctx, d, u = self.flow_ctx()
        before = ctx.counters.dep_checks
        lib.dep_exists(ctx, "flow", d.qid, u.qid)
        assert ctx.counters.dep_checks == before + 1


class TestSets:
    def test_loop_body_from_binding_positions(self):
        builder, head, body = loop_program()
        ctx = context_for(builder)
        binding = list(lib.loops(ctx))[0]
        assert lib.loop_body(ctx, binding) == (body.qid,)

    def test_member_counts(self):
        ctx = context_for(loop_program()[0])
        before = ctx.counters.mem_checks
        assert lib.member(ctx, 2, (1, 2, 3))
        assert not lib.member(ctx, 9, (1, 2, 3))
        assert ctx.counters.mem_checks == before + 2

    def test_path_set_interval(self):
        b = IRBuilder()
        s0 = b.assign("a", 1)
        s1 = b.assign("b", 2)
        s2 = b.assign("c", 3)
        s3 = b.assign("d", 4)
        ctx = context_for(b)
        assert lib.path_set(ctx, s0.qid, s3.qid) == (s1.qid, s2.qid)

    def test_path_set_widens_over_partial_loop(self):
        b = IRBuilder()
        copy = b.assign("x", "y")
        with b.loop("i", 1, 3):
            use = b.assign("z", "x")
            redef = b.assign("y", 2)
        b.write("z")
        ctx = context_for(b)
        path = lib.path_set(ctx, copy.qid, use.qid)
        assert redef.qid in path

    def test_path_set_keeps_endpoint_widened_into_loop(self):
        b = IRBuilder()
        copy = b.assign("v", "u")
        with b.loop("i", 1, 7):
            use = b.binary("u", "v", "+", -1)
        b.write("u")
        ctx = context_for(b)
        # the use's earlier-iteration instances run between the copy
        # and the use, so the endpoint stays in the widened path
        assert use.qid in lib.path_set(ctx, copy.qid, use.qid)

    def test_path_set_excludes_boundary_endpoints(self):
        b = IRBuilder()
        s0 = b.assign("a", 1)
        with b.loop("i", 1, 3):
            inner = b.assign("b", "a")
        last = b.write("b")
        ctx = context_for(b)
        path = lib.path_set(ctx, s0.qid, last.qid)
        assert s0.qid not in path and last.qid not in path
        assert inner.qid in path

    def test_set_operations(self):
        assert lib.set_inter((1, 2, 3), (2, 3, 4)) == (2, 3)
        assert lib.set_union((1, 2), (2, 3)) == (1, 2, 3)

    def test_uses_in_finds_subscript_uses(self):
        builder, _head, body = loop_program()
        ctx = context_for(builder)
        sites = lib.uses_in(ctx, Var("i"), (body.qid,))
        positions = {binding.pos for _qid, binding in sites}
        assert "a" in positions  # a(i) read
        assert all(binding.var == "i" for _q, binding in sites)

    def test_range_values(self):
        ctx = context_for(loop_program()[0])
        assert lib.range_values(ctx, Const(1), Const(7), Const(2)) == [
            1, 3, 5, 7,
        ]
        assert lib.range_values(ctx, Const(4), Const(1), Const(-1)) == [
            4, 3, 2, 1,
        ]

    def test_range_zero_step_raises(self):
        ctx = context_for(loop_program()[0])
        with pytest.raises(GenesisRuntimeError):
            lib.range_values(ctx, Const(1), Const(5), Const(0))

    def test_arith_folds(self):
        ctx = context_for(loop_program()[0])
        assert lib.arith(ctx, "-", Const(5), Const(2)) == Const(3)
        assert lib.arith(ctx, "/", Const(8), Const(2)) == Const(4)

    def test_arith_division_by_zero(self):
        ctx = context_for(loop_program()[0])
        with pytest.raises(GenesisRuntimeError):
            lib.arith(ctx, "/", Const(1), Const(0))


class TestActions:
    def test_delete_statement(self):
        b = IRBuilder()
        doomed = b.assign("x", 1)
        b.assign("y", 2)
        ctx = context_for(b)
        lib.act_delete(ctx, doomed.qid)
        assert not ctx.program.contains(doomed.qid)

    def test_delete_loop_binding_removes_region(self):
        builder, head, body = loop_program()
        ctx = context_for(builder)
        binding = list(lib.loops(ctx))[0]
        size_before = len(ctx.program)
        lib.act_delete(ctx, binding)
        assert len(ctx.program) == size_before - 3

    def test_move(self):
        b = IRBuilder()
        first = b.assign("x", 1)
        second = b.assign("y", 2)
        ctx = context_for(b)
        lib.act_move(ctx, first.qid, second.qid)
        assert ctx.program.qids() == [second.qid, first.qid]

    def test_copy_single(self):
        b = IRBuilder()
        stmt = b.assign("x", 1)
        ctx = context_for(b)
        new_qid = lib.act_copy(ctx, stmt.qid, stmt.qid)
        assert ctx.program.contains(new_qid)
        assert str(ctx.program.quad(new_qid)) == "x := 1"

    def test_copy_block_preserves_order(self):
        b = IRBuilder()
        s0 = b.assign("x", 1)
        s1 = b.assign("y", 2)
        anchor = b.assign("z", 3)
        ctx = context_for(b)
        new_qids = lib.act_copy(ctx, (s0.qid, s1.qid), anchor.qid)
        texts = [str(ctx.program.quad(q)) for q in new_qids]
        assert texts == ["x := 1", "y := 2"]
        positions = [ctx.program.position(q) for q in new_qids]
        assert positions == sorted(positions)

    def test_add_with_built_stmt(self):
        b = IRBuilder()
        anchor = b.assign("x", 1)
        ctx = context_for(b)
        quad = lib.build_stmt(ctx, Var("t"), "add", Var("x"), Const(2))
        new_qid = lib.act_add(ctx, anchor.qid, quad)
        assert str(ctx.program.quad(new_qid)) == "t := x + 2"

    def test_build_stmt_unknown_opcode(self):
        ctx = context_for(loop_program()[0])
        with pytest.raises(GenesisRuntimeError):
            lib.build_stmt(ctx, Var("t"), "frob", Var("x"))

    def test_modify_operand_whole(self):
        b = IRBuilder()
        stmt = b.binary("x", "y", "+", "z")
        ctx = context_for(b)
        lib.act_modify_operand(ctx, stmt.qid, PosBinding("a", "y"), Const(7))
        assert stmt.a == Const(7)

    def test_modify_operand_substitutes_into_subscript(self):
        builder, _head, body = loop_program()
        ctx = context_for(builder)
        lib.act_modify_operand(
            ctx, body.qid, PosBinding("a", "i"), Const(3)
        )
        assert str(ctx.program.quad(body.qid).a) == "a(3)"

    def test_modify_operand_mismatched_var_raises(self):
        b = IRBuilder()
        stmt = b.binary("x", "y", "+", "z")
        ctx = context_for(b)
        with pytest.raises(GenesisRuntimeError):
            lib.act_modify_operand(
                ctx, stmt.qid, PosBinding("a", "q"), Const(7)
            )

    def test_modify_attr_opcode(self):
        builder, head, _body = loop_program()
        ctx = context_for(builder)
        lib.act_modify_attr(ctx, head.qid, "opc", "doall")
        assert ctx.program.quad(head.qid).opcode is Opcode.DOALL

    def test_modify_attr_bounds(self):
        builder, head, _body = loop_program()
        ctx = context_for(builder)
        lib.act_modify_attr(ctx, head.qid, "init", Const(2))
        lib.act_modify_attr(ctx, head.qid, "final", Const(9))
        quad = ctx.program.quad(head.qid)
        assert quad.a == Const(2) and quad.b == Const(9)

    def test_modify_attr_none_clears_operand(self):
        b = IRBuilder()
        stmt = b.binary("x", 2, "*", 3)
        ctx = context_for(b)
        lib.act_modify_attr(ctx, stmt.qid, "opr_3", "none")
        assert stmt.b is None

    def test_actions_count_ops(self):
        b = IRBuilder()
        stmt = b.assign("x", 1)
        b.assign("y", 2)
        ctx = context_for(b)
        before = ctx.counters.action_ops
        lib.act_delete(ctx, stmt.qid)
        assert ctx.counters.action_ops > before
