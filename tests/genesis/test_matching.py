"""The incremental matching engine: indexes, worklist, shadow parity.

The load-bearing guarantee is *observational equivalence*: a pipeline
driven by worklist sweeps must transform every program exactly as the
paper's restart-from-top re-scan does.  The property tests here drive
that across every catalog optimizer on random structured programs; the
chaos test asserts the candidate index is byte-equal to a from-scratch
rebuild after transaction rollbacks.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.manager import AnalysisManager
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.matching import (
    MatchEngine,
    MatchIndex,
    engine_for,
    point_signature,
    profile_spec,
)
from repro.genesis.transaction import ProgramTransaction
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var
from repro.workloads.synthetic import random_program

#: every catalog optimizer — the paper's ten plus the CRC variant
ALL_OPTIMIZERS = (
    "BMP", "CFO", "CPP", "CRC", "CTP", "DCE", "FUS", "ICM", "INX",
    "LUR", "PAR",
)

COMMON = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: scalar pipeline used by the mixed-pass property test
SCALAR_PASSES = ("CTP", "CFO", "CPP", "DCE", "CTP", "DCE")


def _text(program) -> list[str]:
    return [str(quad) for quad in program]


def _run(optimizer, program, mode, manager=None, max_applications=30):
    return run_optimizer(
        optimizer,
        program,
        DriverOptions(
            apply_all=True,
            max_applications=max_applications,
            match_mode=mode,
        ),
        manager=manager,
    )


# ----------------------------------------------------------------------
# property: worklist == rescan, per optimizer and in pipelines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("opt_name", ALL_OPTIMIZERS)
@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_worklist_matches_rescan_per_optimizer(optimizers, opt_name, seed):
    base = random_program(seed, size=14, max_depth=3)
    worklist = base.clone()
    rescan = base.clone()
    work_result = _run(optimizers[opt_name], worklist, "worklist")
    scan_result = _run(optimizers[opt_name], rescan, "rescan")
    assert _text(worklist) == _text(rescan)
    assert len(work_result.applications) == len(scan_result.applications)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_worklist_matches_rescan_in_pipeline(optimizers, seed):
    """Interleaved passes over one shared manager — the sweep caches
    survive across pass boundaries and must still agree with rescan."""
    base = random_program(seed, size=16, max_depth=2)
    worklist = base.clone()
    rescan = base.clone()
    manager = AnalysisManager(worklist)
    for name in SCALAR_PASSES:
        _run(optimizers[name], worklist, "worklist", manager=manager)
    for name in SCALAR_PASSES:
        _run(optimizers[name], rescan, "rescan")
    assert _text(worklist) == _text(rescan)


# ----------------------------------------------------------------------
# chaos: rollbacks must leave the index byte-equal to a fresh rebuild
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_index_survives_rollback_byte_equal(optimizers, seed):
    program = random_program(seed, size=16, max_depth=2)
    manager = AnalysisManager(program)
    engine = engine_for(manager)
    # prime the index and sweep caches with a real run
    _run(optimizers["CTP"], program, "worklist", manager=manager)

    txn = ProgramTransaction(program)
    txn.begin()
    victim = next(iter(program)).qid
    program.insert_after(
        victim, Quad(Opcode.ASSIGN, result=Var("z"), a=Const(1))
    )
    program.remove(victim)
    # mid-transaction state is visible to the index like any other
    engine.index.refresh(manager.structure)
    txn.rollback()

    engine.index.refresh(manager.structure)
    fresh = MatchIndex(program)
    fresh.refresh(manager.structure)
    assert engine.index.fingerprint() == fresh.fingerprint()
    # and the engine still sweeps correctly after the rollback
    worklist = program.clone()
    _run(optimizers["DCE"], program, "worklist", manager=manager)
    _run(optimizers["DCE"], worklist, "rescan")
    assert _text(program) == _text(worklist)


# ----------------------------------------------------------------------
# unit: eligibility profiling
# ----------------------------------------------------------------------
def test_profile_eligibility_table(optimizers):
    profiles = {
        name: profile_spec(optimizers[name].analyzed)
        for name in ("CTP", "CPP", "DCE", "CFO", "FUS", "LUR")
    }
    for name in ("CTP", "CPP", "DCE", "CFO"):
        assert profiles[name].eligible, name
        assert profiles[name].seed is not None, name
    # loop-seeded specifications always take the full sweep
    for name in ("FUS", "LUR"):
        assert not profiles[name].eligible, name
        assert profiles[name].seed is None, name
    # CPP consults path(...) membership: position-sensitive
    assert profiles["CPP"].position_sensitive
    assert not profiles["CTP"].position_sensitive
    # anchor chains: every variable reaches the seed over typed steps
    assert profiles["DCE"].var_paths == ((("flow", True),),)
    assert profiles["CFO"].var_paths == ()  # no dependence atoms at all
    assert profiles["CTP"].dep_kinds == frozenset({"flow"})
    assert profiles["CPP"].dep_kinds == frozenset({"flow", "anti"})


# ----------------------------------------------------------------------
# unit: index maintenance from the change log
# ----------------------------------------------------------------------
def test_index_tracks_insert_modify_remove():
    program = random_program(11, size=10, max_depth=1)
    index = MatchIndex(program)
    index.refresh()

    def check():
        fresh = MatchIndex(program)
        fresh.refresh()
        assert index.fingerprint() == fresh.fingerprint()

    first = next(iter(program)).qid
    added = program.insert_after(
        first, Quad(Opcode.ASSIGN, result=Var("u"), a=Const(7))
    )
    index.refresh()
    check()
    assert index.matches_shape(added.qid, ("assign:const",))
    assert added.qid in index.statements_of(("assign:const",))

    program.replace(
        added.qid, Quad(Opcode.ASSIGN, result=Var("u"), a=Var("v"))
    )
    index.refresh()
    check()
    assert not index.matches_shape(added.qid, ("assign:const",))
    assert index.matches_shape(added.qid, ("assign:var",))

    program.remove(added.qid)
    index.refresh()
    check()
    assert not index.matches_shape(added.qid, ("assign:var",))
    assert added.qid not in index.statements_of(("assign", "assign:var"))


def test_index_statements_of_in_program_order():
    program = random_program(5, size=12, max_depth=1)
    index = MatchIndex(program)
    index.refresh()
    qids = index.statements_of(("assign", "binop", "unop"))
    assert qids == sorted(qids, key=program.position)
    assert set(qids) == index.members_of(("assign", "binop", "unop"))


# ----------------------------------------------------------------------
# unit: point signatures tolerate unhashable binding values
# ----------------------------------------------------------------------
def test_point_signature_handles_unhashable_values():
    bound = [1, 2, 3]  # lists are unhashable
    sig_a = point_signature({"Si": 4, "set": bound})
    sig_b = point_signature({"Si": 4, "set": bound})
    assert hash(sig_a) == hash(sig_b)
    assert sig_a == sig_b
    other = point_signature({"Si": 4, "set": [1, 2, 3]})
    assert other != sig_a  # identity-keyed, not silently dropped


# ----------------------------------------------------------------------
# unit: shadow mode runs and counts its cross-checks
# ----------------------------------------------------------------------
def test_shadow_mode_checks_worklist_sweeps(optimizers):
    program = random_program(9, size=20, max_depth=2)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=True)
    manager._match_engine = engine  # what engine_for would attach
    _run(optimizers["CTP"], program, "worklist", manager=manager)
    assert engine.stats.shadow_checks > 0
    assert engine.stats.shadow_checks == engine.stats.worklist_sweeps


# ----------------------------------------------------------------------
# unit: sweep caches are keyed by spec fingerprint, not object identity
# ----------------------------------------------------------------------
def test_sweep_cache_survives_regeneration_of_same_spec():
    """Two generations of the same source share a fingerprint, so the
    second sweep is served from cache despite the fresh object."""
    from repro.genesis.driver import make_context
    from repro.genesis.matching import spec_fingerprint
    from repro.opts.catalog import build_optimizer

    program = random_program(11, size=20, max_depth=1)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    first = build_optimizer("CTP")
    second = build_optimizer("CTP")
    assert first is not second or True  # lru may share; fingerprint rules
    assert spec_fingerprint(first) == spec_fingerprint(second)
    engine.sweep(first, make_context(program, manager=manager))
    cached_before = engine.stats.cached_sweeps
    engine.sweep(second, make_context(program, manager=manager))
    assert engine.stats.cached_sweeps == cached_before + 1


def test_sweep_cache_invalidated_on_changed_source_same_name():
    """A re-generated spec with the same name but different source
    must not reuse the previous points."""
    from repro.genesis.driver import make_context
    from repro.genesis.generator import generate_optimizer
    from repro.opts.specs import STANDARD_SPECS

    program = random_program(11, size=20, max_depth=1)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    original = generate_optimizer(STANDARD_SPECS["CTP"], name="CTP")
    variant_source = STANDARD_SPECS["CTP"].replace(
        "type(Si.opr_1) == var;",
        "type(Si.opr_1) == var AND Si.opr_2 == 424242;",
    )
    variant = generate_optimizer(variant_source, name="CTP")
    engine.sweep(original, make_context(program, manager=manager))
    cached_before = engine.stats.cached_sweeps
    full_before = engine.stats.full_sweeps
    result = engine.sweep(variant, make_context(program, manager=manager))
    assert engine.stats.cached_sweeps == cached_before
    assert engine.stats.full_sweeps == full_before + 1
    assert result.points == []  # nothing assigns 424242
