"""The shared catalog discrimination network: parity, chaos, units.

The network's contract mirrors the worklist's: the agenda it serves
for every registered spec must equal — points *and* canonical order —
what that spec's own :meth:`MatchEngine.sweep` would have found.  The
property tests here drive that across the whole catalog on random
structured programs under random edit scripts; the chaos test pushes
transaction rollbacks through the delta-maintenance path.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.manager import AnalysisManager
from repro.genesis.codegen import emit_network
from repro.genesis.driver import DriverOptions, make_context, run_optimizer
from repro.genesis.generator import generate_optimizer
from repro.genesis.matching import MatchEngine, MatchIndex, spec_fingerprint
from repro.genesis.network import build_trie, compile_plan
from repro.genesis.transaction import ProgramTransaction
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var
from repro.opts.specs import STANDARD_SPECS
from repro.workloads.synthetic import random_program

ALL_OPTIMIZERS = (
    "BMP", "CFO", "CPP", "CRC", "CTP", "DCE", "FUS", "ICM", "INX",
    "LUR", "PAR",
)

COMMON = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _edit(program, op: int, val: int) -> None:
    """One random-but-reproducible program edit."""
    if op == 0:
        qids = list(program.qids())
        target = qids[val % len(qids)]
        program.insert_after(
            target,
            Quad(
                Opcode.ASSIGN,
                result=Var(f"n{val % 7}"),
                a=Const(val % 11),
            ),
        )
    elif op == 1:
        victims = [
            quad
            for quad in program
            if quad.opcode is Opcode.ASSIGN and isinstance(quad.a, Const)
        ]
        if not victims:
            return
        quad = victims[val % len(victims)]
        before = program.preimage(quad.qid)
        quad.set_operand("a", Const(val % 13))
        program.touch(quad.qid, before=before)
    else:
        victims = [quad for quad in program if not quad.is_structural()]
        if len(victims) < 2:
            return
        program.remove(victims[val % len(victims)].qid)


def _agenda(result):
    """(signature, bindings) pairs, in served order."""
    return [(sig, bindings) for sig, bindings in result.points]


def _reference(engine, optimizer, program, manager):
    """Ground truth: an uncached full sweep on a throwaway engine."""
    ctx = make_context(program, manager=manager)
    return _agenda(engine.sweep(optimizer, ctx, allow_worklist=False))


# ----------------------------------------------------------------------
# property: shared-network agenda == per-spec sweep, whole catalog
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=4,
    ),
)
def test_sweep_all_matches_per_spec_sweeps(optimizers, seed, script):
    program = random_program(seed, size=14, max_depth=2)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=True)
    manager._match_engine = engine  # what engine_for would attach
    catalog = [optimizers[name] for name in ALL_OPTIMIZERS]
    reference = MatchEngine(manager, full_check=False)
    for step in [None, *script]:
        if step is not None:
            _edit(program, *step)
        ctx = make_context(program, manager=manager)
        results = engine.sweep_all(ctx, catalog)
        assert set(results) == set(ALL_OPTIMIZERS)
        for name in ALL_OPTIMIZERS:
            assert results[name].mode == "network"
            want = _reference(reference, optimizers[name], program, manager)
            assert _agenda(results[name]) == want, name
    assert engine.stats.network_sweeps > 0
    assert engine.stats.shadow_checks >= engine.stats.network_sweeps


# ----------------------------------------------------------------------
# chaos: rollbacks flow through the delta-maintenance path
# ----------------------------------------------------------------------
@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=3,
    ),
)
def test_network_survives_rollback(optimizers, seed, script):
    program = random_program(seed, size=14, max_depth=2)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=True)
    manager._match_engine = engine
    catalog = [optimizers[name] for name in ALL_OPTIMIZERS]
    ctx = make_context(program, manager=manager)
    engine.sweep_all(ctx, catalog)  # prime every agenda

    txn = ProgramTransaction(program)
    txn.begin()
    for step in script:
        _edit(program, *step)
    # mid-transaction state is served (and shadow-checked) like any
    engine.sweep_all(make_context(program, manager=manager))
    txn.rollback()

    # post-rollback: agendas must equal a from-scratch enumeration, and
    # the candidate index must be byte-equal to a fresh rebuild
    results = engine.sweep_all(make_context(program, manager=manager))
    reference = MatchEngine(manager, full_check=False)
    for name in ALL_OPTIMIZERS:
        want = _reference(reference, optimizers[name], program, manager)
        assert _agenda(results[name]) == want, name
    fresh = MatchIndex(program)
    fresh.refresh(manager.structure)
    assert engine.index.fingerprint() == fresh.fingerprint()


# ----------------------------------------------------------------------
# property: driver parity, network mode vs restart-from-top rescan
# ----------------------------------------------------------------------
@pytest.mark.parametrize("opt_name", ("CTP", "CPP", "DCE", "LUR"))
@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_network_driver_matches_rescan(optimizers, opt_name, seed):
    base = random_program(seed, size=14, max_depth=3)
    network = base.clone()
    rescan = base.clone()
    options = DriverOptions(
        apply_all=True, max_applications=30, match_mode="network"
    )
    net_result = run_optimizer(optimizers[opt_name], network, options)
    scan_result = run_optimizer(
        optimizers[opt_name],
        rescan,
        DriverOptions(
            apply_all=True, max_applications=30, match_mode="rescan"
        ),
    )
    assert [str(q) for q in network] == [str(q) for q in rescan]
    assert len(net_result.applications) == len(scan_result.applications)


# ----------------------------------------------------------------------
# unit: the compiled trie and its rendered source
# ----------------------------------------------------------------------
def test_emit_network_over_standard_catalog(optimizers):
    generated = emit_network([optimizers[n] for n in ALL_OPTIMIZERS])
    assert generated.name == "NETWORK"
    namespace: dict = {}
    exec(compile(generated.source, "<test:NETWORK>", "exec"), namespace)
    # seed-granular specs (one ANY statement binder, loop co-binders
    # allowed) are classified by the network; pure-loop and
    # multi-pattern specs stay per-spec ("coarse")
    assert set(namespace["NETWORK_SPECS"]) == {
        "CFO", "CPP", "CTP", "DCE", "ICM",
    }
    assert set(namespace["NETWORK_SPECS"]) | set(
        namespace["NETWORK_COARSE"]
    ) == set(ALL_OPTIMIZERS)
    assert namespace["NETWORK_NODES"] > 0
    # CFO and DCE both test binop seeds: at least one shared prefix
    assert namespace["NETWORK_SHARED_NODES"] >= 1
    assert callable(namespace["classify_network"])


def test_classifier_admits_constant_assign(optimizers):
    program = random_program(3, size=10, max_depth=1)
    first = next(iter(program)).qid
    added = program.insert_after(
        first, Quad(Opcode.ASSIGN, result=Var("c"), a=Const(5))
    )
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    catalog = [optimizers[n] for n in ALL_OPTIMIZERS]
    ctx = make_context(program, manager=manager)
    results = engine.sweep_all(ctx, catalog)
    # the fresh constant definition is dead (nothing reads c), so the
    # network's DCE agenda must contain a point seeded at it
    dce = [bindings for _, bindings in results["DCE"].points]
    assert any(added.qid in bindings.values() for bindings in dce)


def test_trie_merges_common_prefixes(optimizers):
    variant = STANDARD_SPECS["CTP"].replace(
        "type(Si.opr_1) == var;",
        "type(Si.opr_1) == var AND Si.opr_2 == {k};",
    )
    plans = [compile_plan(optimizers["CTP"])]
    for k in (1, 2, 3):
        plans.append(
            compile_plan(
                generate_optimizer(variant.format(k=k), name=f"CTP_V{k}")
            )
        )
    merged = build_trie(plans)
    alone = sum(build_trie([plan]).nodes for plan in plans)
    # all four share the assign:const root and the flow(=) test node
    assert merged.nodes < alone
    assert merged.shared_nodes >= 1
    solo = build_trie(plans[:1])
    assert merged.nodes == solo.nodes  # variants add no new nodes


# ----------------------------------------------------------------------
# regression: sweep caches are keyed by spec fingerprint, not identity
# ----------------------------------------------------------------------
def test_sweep_cache_survives_regenerated_optimizer(optimizers):
    program = random_program(4, size=12, max_depth=1)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    first = generate_optimizer(STANDARD_SPECS["CTP"], name="CTP")
    twin = generate_optimizer(STANDARD_SPECS["CTP"], name="CTP")
    assert first is not twin
    assert spec_fingerprint(first) == spec_fingerprint(twin)

    engine.sweep(first, make_context(program, manager=manager))
    before = engine.stats.cached_sweeps
    # same spec, different object identity: the cache must be served
    result = engine.sweep(twin, make_context(program, manager=manager))
    assert result.mode == "cached"
    assert engine.stats.cached_sweeps == before + 1

    # a *different* spec under the same name must drop the cache
    imposter = generate_optimizer(STANDARD_SPECS["CPP"], name="CTP")
    assert spec_fingerprint(imposter) != spec_fingerprint(first)
    result = engine.sweep(imposter, make_context(program, manager=manager))
    assert result.mode == "full"


# ----------------------------------------------------------------------
# unit: the network surfaces its counters through MatchStats
# ----------------------------------------------------------------------
def test_network_counters_reach_stats_summary(optimizers):
    program = random_program(6, size=12, max_depth=2)
    manager = AnalysisManager(program)
    engine = MatchEngine(manager, full_check=False)
    manager._match_engine = engine
    catalog = [optimizers[n] for n in ALL_OPTIMIZERS]
    engine.sweep_all(make_context(program, manager=manager), catalog)
    stats = engine.stats.as_dict()
    for key in (
        "network_sweeps",
        "network_nodes",
        "network_shared_hits",
        "network_tokens",
        "network_tail_runs",
        "network_entries_reused",
        "network_agenda_points",
        "network_seconds",
    ):
        assert key in stats, key
    assert stats["network_sweeps"] == len(ALL_OPTIMIZERS)
    assert stats["network_nodes"] > 0
    assert "network:" in engine.stats.summary()
