"""Unit tests for the batch pipeline (paper Figure 3)."""

from repro.genesis.pipeline import optimize, optimize_source
from repro.frontend.lower import parse_program

SOURCE = """
program t
  integer a, b
  a = 2
  b = a * 3
  write b
end
"""


def test_optimize_clones_by_default(optimizers):
    program = parse_program(SOURCE)
    report = optimize(program, [optimizers["CTP"]])
    assert report.program is not program
    assert "a * 3" in str(program)  # original untouched
    assert "2 * 3" in str(report.program)


def test_optimize_in_place(optimizers):
    program = parse_program(SOURCE)
    optimize(program, [optimizers["CTP"]], in_place=True)
    assert "2 * 3" in str(program)


def test_sequence_order_applied(optimizers):
    report = optimize_source(
        SOURCE, [optimizers["CTP"], optimizers["CFO"], optimizers["DCE"]]
    )
    assert [r.optimizer for r in report.results] == ["CTP", "CFO", "DCE"]
    assert report.applications_by_optimizer()["CTP"] == 1
    assert report.total_applications >= 3


def test_report_str(optimizers):
    report = optimize_source(SOURCE, [optimizers["CTP"]])
    assert "pipeline:" in str(report)
