"""Unit tests for the interactive optimizer session (constructor)."""

import pytest

from repro.genesis.session import OptimizerSession, SessionError
from repro.opts.catalog import standard_optimizers

SOURCE = """
program t
  integer a, b, c
  a = 2
  b = a * 3
  c = b + a
  write c
end
"""


@pytest.fixture()
def session():
    instance = OptimizerSession.from_source(
        SOURCE,
        optimizers=standard_optimizers(("CTP", "CFO", "DCE")).values(),
    )
    return instance


class TestBasics:
    def test_from_source_parses(self, session):
        assert len(session.program) == 4

    def test_list_optimizations(self, session):
        assert session.list_optimizations() == ["CFO", "CTP", "DCE"]

    def test_points(self, session):
        assert len(session.points("CTP")) == 2
        assert session.points("CFO") == []

    def test_unknown_optimizer(self, session):
        with pytest.raises(SessionError):
            session.points("NOPE")

    def test_dependences_cached_by_version(self, session):
        first = session.dependences
        assert session.dependences is first
        session.apply("CTP")
        assert session.dependences is not first


class TestApplication:
    def test_apply_first_point(self, session):
        result = session.apply("CTP")
        assert result.applied == 1

    def test_apply_all_then_fold(self, session):
        session.apply("CTP", all_points=True)
        result = session.apply("CFO", all_points=True)
        assert result.applied >= 1
        assert "2 * 3" not in session.show()

    def test_apply_at_point(self, session):
        points = session.points("CTP")
        result = session.apply("CTP", point=len(points) - 1)
        assert result.applied == 1

    def test_sequence(self, session):
        results = session.apply_sequence(["CTP", "CFO", "DCE"])
        assert [r.optimizer for r in results] == ["CTP", "CFO", "DCE"]
        assert session.applications()

    def test_reset_restores_original(self, session):
        original = session.show()
        session.apply_sequence(["CTP", "CFO", "DCE"])
        assert session.show() != original
        session.reset()
        assert session.show() == original

    def test_history_records_events(self, session):
        session.apply("CTP")
        session.reset()
        commands = [event.command for event in session.history]
        assert commands == ["apply CTP", "reset"]


class TestCommandInterface:
    def test_list_command(self, session):
        assert session.execute_command("list") == "CFO\nCTP\nDCE"

    def test_points_command(self, session):
        output = session.execute_command("points CTP")
        assert output.startswith("0:")

    def test_points_command_empty(self, session):
        assert "no application points" in session.execute_command(
            "points CFO"
        )

    def test_apply_commands(self, session):
        assert "1 application" in session.execute_command("apply CTP")
        assert "application" in session.execute_command("apply CTP all")

    def test_apply_at_index_command(self, session):
        output = session.execute_command("apply CTP 0")
        assert "1 application" in output

    def test_recompute_toggle(self, session):
        assert "False" in session.execute_command("recompute off")
        assert session.recompute_dependences is False
        assert "True" in session.execute_command("recompute on")

    def test_deps_command(self, session):
        output = session.execute_command("deps")
        assert "flow:" in output

    def test_show_and_history(self, session):
        assert "a := 2" in session.execute_command("show")
        session.execute_command("apply CTP")
        assert "apply CTP" in session.execute_command("history")

    def test_reset_command(self, session):
        session.execute_command("apply CTP all")
        session.execute_command("reset")
        assert "b := a * 3" in session.show()

    def test_unknown_command(self, session):
        with pytest.raises(SessionError):
            session.execute_command("dance")

    def test_empty_command(self, session):
        assert session.execute_command("") == ""

    def test_override_command(self, session):
        output = session.execute_command("override CTP 0")
        assert "application" in output
