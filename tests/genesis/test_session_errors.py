"""Session error paths: bad requests become history, never aborts."""

import pytest

from repro.genesis.session import OptimizerSession, SessionError
from repro.opts.catalog import build_optimizer
from repro.verify.chaos import ChaosConfig, chaotic

SOURCE = """
program t
  integer x, y, z
  x = 1
  y = x + 2
  z = x + y
  write z
end
"""


def _session():
    return OptimizerSession.from_source(SOURCE, [build_optimizer("CTP")])


class TestErrorEvents:
    def test_unknown_optimizer_is_an_event(self):
        session = _session()
        with pytest.raises(SessionError):
            session.execute_command("apply NOPE")
        event = session.history[-1]
        assert event.error and "NOPE" in event.error
        # the session keeps working afterwards
        assert "CTP" in session.execute_command("list")

    def test_malformed_command_is_an_event(self):
        session = _session()
        with pytest.raises(SessionError) as excinfo:
            session.execute_command("apply CTP notanumber")
        assert "malformed command" in str(excinfo.value)
        event = session.history[-1]
        assert event.error and "malformed" in event.error
        assert "CTP" in session.execute_command("list")

    def test_unknown_command_is_an_event(self):
        session = _session()
        with pytest.raises(SessionError):
            session.execute_command("frobnicate everything")
        assert session.history[-1].error
        assert session.history[-1].command == "frobnicate everything"

    def test_each_error_recorded_exactly_once(self):
        session = _session()
        with pytest.raises(SessionError):
            session.execute_command("apply NOPE")
        errors = [event for event in session.history if event.error]
        assert len(errors) == 1

    def test_stale_point_apply_is_noted_not_fatal(self):
        session = _session()
        points = session.points("CTP")
        result = session.apply("CTP", point=len(points) + 50)
        assert not result.applications and not result.failures
        event = session.history[-1]
        assert event.error is None
        assert event.note and "no application point" in event.note
        # the program is untouched and the session continues
        assert session.apply("CTP", all_points=True).applications

    def test_errors_show_in_history_listing(self):
        session = _session()
        with pytest.raises(SessionError):
            session.execute_command("apply NOPE")
        listing = session.execute_command("history")
        assert "error:" in listing


class TestQuarantineCommands:
    def _broken_session(self):
        session = OptimizerSession.from_source(SOURCE, quarantine_after=2)
        session.register(
            chaotic(
                build_optimizer("CTP"),
                ChaosConfig(seed=0, act_fault_rate=1.0),
            )
        )
        return session

    def test_apply_refuses_quarantined_optimizer(self):
        session = self._broken_session()
        result = session.apply("CTP", all_points=True)
        assert result.stopped == "quarantined"
        with pytest.raises(SessionError) as excinfo:
            session.apply("CTP")
        assert "quarantined" in str(excinfo.value)
        assert session.history[-1].error

    def test_health_and_revive_commands(self):
        session = self._broken_session()
        session.apply("CTP", all_points=True)
        assert "CTP" in session.execute_command("health")
        assert "QUARANTINED" in session.execute_command("health")
        assert "revived" in session.execute_command("revive CTP")
        # after revive the apply is accepted again (and contained)
        result = session.apply("CTP", all_points=True)
        assert result.failures

    def test_revive_unknown_optimizer_is_an_event(self):
        session = self._broken_session()
        with pytest.raises(SessionError):
            session.execute_command("revive NOPE")
        assert session.history[-1].error

    def test_stats_includes_health(self):
        session = self._broken_session()
        session.apply("CTP", all_points=True)
        assert "CTP" in session.execute_command("stats")
