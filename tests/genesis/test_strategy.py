"""Unit tests for Depend-clause strategy selection."""

import pytest

from repro.genesis.strategy import (
    StrategyPolicy,
    choose_strategy,
    usable_primary_groups,
)
from repro.gospel.parser import parse_spec
from repro.gospel.sema import analyze_spec
from repro.opts.specs import STANDARD_SPECS


def clause_and_plan(source, index=0, name="T"):
    analyzed = analyze_spec(parse_spec(source, name=name))
    return (
        analyzed.spec.depends[index],
        analyzed.depend_plans[index],
        analyzed.types,
    )


def strategy_for(source, index=0, policy=StrategyPolicy.HEURISTIC):
    clause, plan, types = clause_and_plan(source, index)
    return choose_strategy(clause, plan, types, policy)


class TestHeuristic:
    def test_bound_endpoint_prefers_deps(self):
        result = strategy_for(STANDARD_SPECS["DCE"])
        assert result.method == "deps"

    def test_both_free_prefers_members(self):
        result = strategy_for(STANDARD_SPECS["PAR"], index=1)
        assert result.method == "members"

    def test_no_free_vars_is_check(self):
        result = strategy_for(STANDARD_SPECS["INX"], index=0)
        assert result.method == "check"

    def test_pos_capture_forces_deps(self):
        result = strategy_for(STANDARD_SPECS["CTP"], index=0)
        assert result.method == "deps"
        assert "position capture" in result.reason

    def test_fused_dep_cannot_drive(self):
        result = strategy_for(STANDARD_SPECS["FUS"], index=2)
        assert result.method == "members"


class TestPolicies:
    def test_force_members(self):
        result = strategy_for(
            STANDARD_SPECS["DCE"], policy=StrategyPolicy.FORCE_MEMBERS
        )
        assert result.method == "members"

    def test_force_deps_on_or_group(self):
        result = strategy_for(
            STANDARD_SPECS["PAR"], index=1, policy=StrategyPolicy.FORCE_DEPS
        )
        assert result.method == "deps"
        assert len(result.primary_group) == 3  # flow OR anti OR out

    def test_force_deps_without_candidates_degrades(self):
        result = strategy_for(
            STANDARD_SPECS["FUS"], index=2, policy=StrategyPolicy.FORCE_DEPS
        )
        assert result.method == "members"


class TestGroups:
    def test_or_of_same_endpoints_is_group(self):
        clause, plan, _types = clause_and_plan(STANDARD_SPECS["PAR"], 1)
        groups = usable_primary_groups(clause, plan)
        assert any(len(g) == 3 for g in groups)

    def test_single_atom_group(self):
        clause, plan, _types = clause_and_plan(STANDARD_SPECS["DCE"], 0)
        groups = usable_primary_groups(clause, plan)
        assert [len(g) for g in groups] == [1]

    def test_primary_dep_property(self):
        result = strategy_for(STANDARD_SPECS["DCE"])
        assert result.primary_dep is result.primary_group[0]
        empty = strategy_for(STANDARD_SPECS["INX"], index=0)
        assert empty.primary_dep is None
