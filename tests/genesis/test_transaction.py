"""Transactional apply: rollback, quarantine, and budgets."""

import pytest

from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.pipeline import optimize
from repro.genesis.transaction import (
    ApplicationFailure,
    ContainmentError,
    HealthLedger,
    ProgramTransaction,
)
from repro.ir.types import Var
from repro.opts.catalog import build_optimizer
from repro.verify.chaos import ChaosConfig, chaotic

#: plenty of constant-propagation points for CTP
SOURCE = """
program t
  integer x, y, z
  x = 1
  y = x + 2
  z = x + y
  write z
end
"""


def _program():
    return parse_program(SOURCE)


def _unparse(program):
    return unparse_program(program, name=program.name)


def _failing(name="CTP", seed=0):
    """A catalog optimizer whose every act raises."""
    return chaotic(
        build_optimizer(name), ChaosConfig(seed=seed, act_fault_rate=1.0)
    )


class TestProgramTransaction:
    def test_commit_keeps_changes(self):
        program = _program()
        txn = ProgramTransaction(program)
        txn.begin()
        target = next(q for q in program.quads if not q.is_structural())
        program.remove(target.qid)
        txn.commit()
        assert target.qid not in [q.qid for q in program.quads]

    def test_rollback_prefers_the_change_log(self):
        program = _program()
        baseline = _unparse(program)
        txn = ProgramTransaction(program)
        txn.begin()
        target = next(q for q in program.quads if not q.is_structural())
        program.remove(target.qid)
        assert txn.rollback() == "log"
        assert _unparse(program) == baseline

    def test_rollback_falls_back_to_snapshot(self):
        program = _program()
        baseline = _unparse(program)
        txn = ProgramTransaction(program)
        txn.begin()
        target = next(q for q in program.quads if q.is_assignment())
        target.result = Var("zz")
        program.touch()  # untagged: log cannot undo this
        assert txn.rollback() == "snapshot"
        assert _unparse(program) == baseline

    def test_no_snapshot_and_uncoverable_log_raises(self):
        program = _program()
        txn = ProgramTransaction(program, snapshot=False)
        txn.begin()
        target = next(q for q in program.quads if q.is_assignment())
        target.result = Var("zz")
        program.touch()
        with pytest.raises(ContainmentError):
            txn.rollback()


class TestHealthLedger:
    def _failure(self, name="CTP"):
        return ApplicationFailure(
            optimizer=name, phase="act", error_type="ChaosError",
            error="boom", bindings={}, restored="log",
        )

    def test_consecutive_rollbacks_trip_the_breaker(self):
        ledger = HealthLedger(quarantine_after=3)
        assert not ledger.record_rollback("CTP", self._failure())
        assert not ledger.record_rollback("CTP", self._failure())
        assert ledger.record_rollback("CTP", self._failure())
        assert ledger.is_quarantined("CTP")
        assert ledger.quarantined() == ["CTP"]

    def test_success_resets_the_streak(self):
        ledger = HealthLedger(quarantine_after=2)
        ledger.record_rollback("CTP", self._failure())
        ledger.record_success("CTP")
        ledger.record_rollback("CTP", self._failure())
        assert not ledger.is_quarantined("CTP")

    def test_revive_clears_quarantine(self):
        ledger = HealthLedger(quarantine_after=1)
        ledger.record_rollback("CTP", self._failure())
        assert ledger.is_quarantined("CTP")
        ledger.revive("CTP")
        assert not ledger.is_quarantined("CTP")
        assert "CTP" in ledger.summary()


class TestDriverContainment:
    def test_act_exception_is_contained_and_rolled_back(self):
        program = _program()
        baseline = _unparse(program)
        result = run_optimizer(
            _failing(), program,
            DriverOptions(apply_all=True, max_rollbacks=3),
        )
        assert not result.applications
        assert result.failures
        assert result.failures[0].phase == "act"
        assert result.failures[0].error_type == "ChaosError"
        assert result.failures[0].restored in ("log", "snapshot")
        # rollback restored byte-identical source
        assert _unparse(program) == baseline

    def test_rollback_budget_stops_the_run(self):
        result = run_optimizer(
            _failing(), _program(),
            DriverOptions(apply_all=True, max_rollbacks=4),
        )
        assert result.stopped == "rollback-budget"
        assert len(result.failures) == 4

    def test_deadline_stops_the_run(self):
        result = run_optimizer(
            build_optimizer("CTP"), _program(),
            DriverOptions(apply_all=True, deadline_seconds=0.0),
        )
        assert result.stopped == "deadline"
        assert not result.applications

    def test_fuel_stops_the_run(self):
        result = run_optimizer(
            build_optimizer("CTP"), _program(),
            DriverOptions(apply_all=True, max_match_attempts=0),
        )
        assert result.stopped == "fuel"
        assert not result.applications

    def test_on_failure_raise_restores_then_propagates(self):
        from repro.verify.chaos import ChaosError

        program = _program()
        baseline = _unparse(program)
        with pytest.raises(ChaosError):
            run_optimizer(
                _failing(), program,
                DriverOptions(apply_all=True, on_failure="raise"),
            )
        assert _unparse(program) == baseline

    def test_on_failure_abort_leaves_damage_for_inspection(self):
        program = _program()
        baseline = _unparse(program)
        from repro.verify.chaos import ChaosError

        with pytest.raises(ChaosError):
            run_optimizer(
                _failing(), program,
                DriverOptions(apply_all=True, on_failure="abort"),
            )
        # the half-applied state is deliberately preserved
        assert _unparse(program) != baseline

    def test_ledger_quarantine_stops_the_run(self):
        ledger = HealthLedger(quarantine_after=2)
        result = run_optimizer(
            _failing(), _program(),
            DriverOptions(apply_all=True, max_rollbacks=10),
            health=ledger,
        )
        assert result.stopped == "quarantined"
        assert len(result.failures) == 2
        assert ledger.is_quarantined("CTP")

    def test_quarantined_optimizer_is_skipped(self):
        ledger = HealthLedger(quarantine_after=1)
        ledger.record_rollback(
            "CTP",
            ApplicationFailure(
                optimizer="CTP", phase="act", error_type="X",
                error="x", bindings={}, restored="log",
            ),
        )
        result = run_optimizer(
            build_optimizer("CTP"), _program(), DriverOptions(),
            health=ledger,
        )
        assert result.stopped == "quarantined"
        assert not result.applications and not result.failures


class TestPipelineQuarantine:
    def test_pipeline_survives_and_reports_quarantine(self):
        program = _program()
        report = optimize(
            program,
            [_failing("CTP"), build_optimizer("DCE")],
            options=DriverOptions(apply_all=True, max_rollbacks=10),
            quarantine_after=3,
        )
        assert report.quarantined == ["CTP"]
        assert report.total_rollbacks == 3
        assert report.failures()
        # the sound optimizer still ran after the quarantine
        assert [r.optimizer for r in report.results] == ["CTP", "DCE"]
        assert "quarantined" in str(report)
