"""Tests for the dialect extensions: region(), pos(), value(), add
keyword-as-symbol."""

import pytest

from repro.gospel.ast import RegionSet
from repro.gospel.parser import parse_spec
from repro.genesis.generator import generate_optimizer
from repro.frontend.lower import parse_program
from repro.genesis.driver import find_application_points


def wrap(depend="", pattern="any Si: Si.opc == assign;",
         action="delete(Si);", types="Stmt: Si, Sj, Sk;"):
    return f"""
    TYPE
      {types}
    PRECOND
      Code_Pattern
        {pattern}
      Depend
        {depend}
    ACTION
      {action}
    """


def test_region_parses_as_set():
    spec = parse_spec(wrap(
        depend="any Sj: flow_dep(Si, Sj);\n"
               "no Sk: mem(Sk, region(Si, Sj)), anti_dep(Si, Sk);"
    ))
    membership = spec.depends[1].memberships[0]
    assert isinstance(membership.set_expr, RegionSet)


def test_region_is_static_interval():
    optimizer = generate_optimizer(wrap(
        pattern="any Si, Sj: Si.opc == assign AND Sj.opc == assign AND "
                "pos(Si) < pos(Sj);",
        depend="no Sk: mem(Sk, region(Si, Sj)), flow_dep(Si, Sk);",
        action="modify(Sj.opr_2, Si.opr_2);",
    ), name="REG")
    # x := 1 ; y := x ; z := 1  -- the region between S0 and S2 holds S1,
    # which is flow-dependent on S0: the (S0, S2) pair is rejected
    program = parse_program(
        "program t\n  integer x, y, z\n  x = 1\n  y = x\n  z = 1\n"
        "  write y\n  write z\nend"
    )
    pairs = {
        (point["Si"], point["Sj"])
        for point in find_application_points(optimizer, program)
    }
    assert (0, 2) not in pairs
    assert (1, 2) in pairs  # nothing between S1 and S2


def test_pos_orders_statements():
    optimizer = generate_optimizer(wrap(
        pattern="any Si, Sj: Si.opc == assign AND Sj.opc == assign AND "
                "pos(Si) < pos(Sj);",
        depend="",
        action="modify(Sj.opr_2, Si.opr_2);",
    ), name="POSX")
    program = parse_program(
        "program t\n  integer x, y\n  x = 1\n  y = 2\n  write x\nend"
    )
    points = find_application_points(optimizer, program)
    assert [(p["Si"], p["Sj"]) for p in points] == [(0, 1)]


def test_add_keyword_usable_as_opcode_symbol():
    spec = parse_spec(wrap(
        pattern="any Si: Si.opc == add;",
    ))
    assert "add" in str(spec.patterns[0].format)


def test_value_requires_constants():
    from repro.genesis.library import GenesisRuntimeError

    optimizer = generate_optimizer(wrap(
        pattern="any Si: Si.opc == mul;",
        action="modify(Si.opr_2, value(Si));",
    ), name="BADVAL")
    program = parse_program(
        "program t\n  integer x, y\n  read y\n  x = y * 2\n  write x\nend"
    )
    from repro.genesis.driver import DriverOptions, run_optimizer

    with pytest.raises(GenesisRuntimeError):
        run_optimizer(
            optimizer, program, DriverOptions(on_failure="raise")
        )
    # the default policy contains the same fault instead
    result = run_optimizer(optimizer, program)
    assert result.failures
    assert result.failures[0].error_type == "GenesisRuntimeError"
