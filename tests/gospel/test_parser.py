"""Unit tests for the GOSpeL parser, including the paper's figures."""

import pytest

from repro.gospel.ast import (
    AddAction,
    Binder,
    BoolOp,
    Compare,
    CopyAction,
    DeleteAction,
    DepCond,
    ElemType,
    ForallAction,
    MemCond,
    ModifyAction,
    MoveAction,
    PathSet,
    Quant,
    RangeSet,
    SetRef,
    UsesSet,
)
from repro.gospel.errors import GospelSyntaxError
from repro.gospel.parser import parse_spec
from repro.opts.specs import CTP_PAPER, INX_PAPER, STANDARD_SPECS

MINIMAL = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign;
  Depend
ACTION
  delete(Si);
"""


class TestSections:
    def test_minimal_spec(self):
        spec = parse_spec(MINIMAL, name="MIN")
        assert spec.name == "MIN"
        assert len(spec.declarations) == 1
        assert len(spec.patterns) == 1
        assert spec.depends == ()
        assert len(spec.actions) == 1

    def test_declarations(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Si, Sj;
              Loop: L1;
              Tight Loops: (La, Lb);
              Nested Loops: (Lc, Ld);
              Adjacent Loops: (Le, Lf);
            PRECOND
              Code_Pattern
                any Si;
              Depend
            ACTION
              delete(Si);
            """
        )
        names = spec.declared_names()
        assert names["Si"] is ElemType.STMT
        assert names["L1"] is ElemType.LOOP
        assert names["La"] is ElemType.TIGHT_LOOPS
        assert names["Ld"] is ElemType.NESTED_LOOPS
        assert names["Lf"] is ElemType.ADJACENT_LOOPS

    def test_chained_pair_declaration(self):
        spec = parse_spec(
            """
            TYPE
              Tight Loops: (L1, L2), (L2, L3);
            PRECOND
              Code_Pattern
                any (L1, L2), (L2, L3);
              Depend
            ACTION
              move(L1.head, L3.head);
            """
        )
        assert spec.loop_pairs() == [
            ("L1", "L2", ElemType.TIGHT_LOOPS),
            ("L2", "L3", ElemType.TIGHT_LOOPS),
        ]

    def test_conflicting_redeclaration_rejected(self):
        with pytest.raises(GospelSyntaxError):
            parse_spec(
                """
                TYPE
                  Stmt: Si;
                  Loop: Si;
                PRECOND
                  Code_Pattern
                    any Si;
                  Depend
                ACTION
                  delete(Si);
                """
            )

    def test_missing_sections_rejected(self):
        with pytest.raises(GospelSyntaxError):
            parse_spec("TYPE Stmt: Si;")


class TestPaperFigures:
    def test_figure_1_ctp(self):
        spec = parse_spec(CTP_PAPER, name="CTP")
        assert [b.name for b in spec.depends[0].binders] == ["Sj"]
        assert spec.depends[0].binders[0].pos_name == "pos"
        dep = spec.depends[0].condition
        assert isinstance(dep, DepCond)
        assert dep.kind == "flow"
        assert dep.direction == ("=",)
        action = spec.actions[0]
        assert isinstance(action, ModifyAction)

    def test_figure_2_inx(self):
        spec = parse_spec(INX_PAPER, name="INX")
        # first Depend clause: the bound-element form with no binders
        first = spec.depends[0]
        assert first.binders == ()
        assert isinstance(first.condition, DepCond)
        # second clause: two searched statements with memberships
        second = spec.depends[1]
        assert [b.name for b in second.binders] == ["Sm", "Sn"]
        assert len(second.memberships) == 2
        assert second.condition.direction == ("<", ">")
        assert all(isinstance(a, MoveAction) for a in spec.actions)

    def test_all_catalog_specs_parse(self):
        for name, source in STANDARD_SPECS.items():
            spec = parse_spec(source, name=name)
            assert spec.patterns, name


class TestClauses:
    def test_pattern_pair_occurrence(self):
        spec = parse_spec(
            """
            TYPE
              Tight Loops: (L1, L2);
            PRECOND
              Code_Pattern
                any (L1, L2);
              Depend
            ACTION
              move(L1.head, L2.head);
            """
        )
        assert [b.name for b in spec.patterns[0].binders] == ["L1", "L2"]

    def test_quantifiers(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Si, Sj;
            PRECOND
              Code_Pattern
                any Si: Si.opc == assign;
              Depend
                no Sj: flow_dep(Si, Sj);
            ACTION
              delete(Si);
            """
        )
        assert spec.patterns[0].quant is Quant.ANY
        assert spec.depends[0].quant is Quant.NO

    def test_memberships_with_and(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Sm, Sn;
              Loop: L1;
            PRECOND
              Code_Pattern
                any L1;
              Depend
                no Sm, Sn: mem(Sm, L1) AND mem(Sn, L1),
                   flow_dep(Sm, Sn, (<));
            ACTION
              modify(L1.head.opc, doall);
            """
        )
        clause = spec.depends[0]
        assert len(clause.memberships) == 2
        assert isinstance(clause.memberships[0], MemCond)
        assert isinstance(clause.memberships[0].set_expr, SetRef)

    def test_path_set(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Si, Sj, Sk;
            PRECOND
              Code_Pattern
                any Si;
              Depend
                any Sj: flow_dep(Si, Sj);
                no Sk: mem(Sk, path(Si, Sj)), anti_dep(Si, Sk);
            ACTION
              delete(Si);
            """
        )
        membership = spec.depends[1].memberships[0]
        assert isinstance(membership.set_expr, PathSet)

    def test_or_conditions(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Si, Sj;
            PRECOND
              Code_Pattern
                any Si;
              Depend
                no Sj: flow_dep(Si, Sj) OR anti_dep(Si, Sj);
            ACTION
              delete(Si);
            """
        )
        condition = spec.depends[0].condition
        assert isinstance(condition, BoolOp)
        assert condition.op == "or"

    def test_direction_vector_forms(self):
        spec = parse_spec(
            """
            TYPE
              Stmt: Si, Sj;
            PRECOND
              Code_Pattern
                any Si;
              Depend
                no Sj: flow_dep(Si, Sj, (*, any, <, =, >));
            ACTION
              delete(Si);
            """
        )
        assert spec.depends[0].condition.direction == (
            "*", "*", "<", "=", ">",
        )

    def test_bad_direction_rejected(self):
        with pytest.raises(GospelSyntaxError):
            parse_spec(
                """
                TYPE
                  Stmt: Si, Sj;
                PRECOND
                  Code_Pattern
                    any Si;
                  Depend
                    no Sj: flow_dep(Si, Sj, (^));
                ACTION
                  delete(Si);
                """
            )


class TestActions:
    def full(self, actions):
        return parse_spec(
            f"""
            TYPE
              Stmt: Si, Sj;
              Loop: L1;
            PRECOND
              Code_Pattern
                any Si;
              Depend
            ACTION
              {actions}
            """
        ).actions

    def test_delete(self):
        (action,) = self.full("delete(Si);")
        assert isinstance(action, DeleteAction)

    def test_move(self):
        (action,) = self.full("move(Si, L1.end);")
        assert isinstance(action, MoveAction)

    def test_copy(self):
        (action,) = self.full("copy(L1.body, L1.end, Bk);")
        assert isinstance(action, CopyAction)
        assert action.name == "Bk"

    def test_add_with_template(self):
        (action,) = self.full(
            "add(L1.head, stmt(newtemp, add, L1.lcv, L1.init - 1), Sb);"
        )
        assert isinstance(action, AddAction)
        assert action.template.opcode == "add"

    def test_modify_operand(self):
        (action,) = self.full("modify(operand(Si, pos), Si.opr_2);")
        assert isinstance(action, ModifyAction)

    def test_forall_uses_with_where(self):
        (action,) = self.full(
            "forall (Su, posu) in uses(L1.lcv, L1.body) where Su != Si "
            "{ modify(operand(Su, posu), Si.opr_1); }"
        )
        assert isinstance(action, ForallAction)
        assert isinstance(action.domain, UsesSet)
        assert action.where is not None
        assert len(action.body) == 1

    def test_forall_range(self):
        (action,) = self.full(
            "forall k in range(L1.final, L1.init, 0 - L1.step) "
            "{ copy(L1.body, L1.end, Bk); }"
        )
        assert isinstance(action.domain, RangeSet)

    def test_unknown_action_rejected(self):
        with pytest.raises(GospelSyntaxError):
            self.full("frobnicate(Si);")
