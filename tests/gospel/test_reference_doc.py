"""Guard the language reference against drift: its embedded complete
example must parse and generate."""

import re
from pathlib import Path

from repro.genesis.generator import generate_optimizer

DOC = Path(__file__).resolve().parents[2] / "docs" / "gospel_reference.md"


def test_reference_example_generates():
    text = DOC.read_text()
    blocks = re.findall(r"```\n(TYPE\n.*?)```", text, re.DOTALL)
    assert blocks, "the reference must keep a complete TYPE...ACTION example"
    complete = [b for b in blocks if "ACTION" in b]
    assert complete
    for block in complete:
        optimizer = generate_optimizer(block, name="DOCX")
        assert optimizer.source


def test_reference_covers_all_primitives():
    text = DOC.read_text()
    for primitive in ("delete(", "copy(", "move(", "add(", "modify("):
        assert primitive in text
