"""Unit tests for GOSpeL semantic analysis and the binding plan."""

import pytest

from repro.gospel.errors import GospelSemanticError
from repro.gospel.parser import parse_spec
from repro.gospel.sema import analyze_spec
from repro.opts.specs import STANDARD_SPECS


def analyze(source, name="T"):
    return analyze_spec(parse_spec(source, name=name))


class TestBindingPlans:
    def test_pattern_binds_search_vars(self):
        analyzed = analyze(
            """
            TYPE
              Stmt: Si, Sj;
            PRECOND
              Code_Pattern
                any Si: Si.opc == assign;
              Depend
                any Sj: flow_dep(Si, Sj);
            ACTION
              delete(Sj);
            """
        )
        assert analyzed.pattern_plans[0].search_vars == ("Si",)
        assert analyzed.depend_plans[0].search_vars == ("Sj",)
        assert "Sj" in analyzed.action_names

    def test_no_clause_binds_nothing(self):
        analyzed = analyze(
            """
            TYPE
              Stmt: Si, Sl;
            PRECOND
              Code_Pattern
                any Si;
              Depend
                no Sl: flow_dep(Sl, Si);
            ACTION
              delete(Si);
            """
        )
        assert "Sl" not in analyzed.action_names

    def test_pos_capture_recorded(self):
        analyzed = analyze(STANDARD_SPECS["CTP"] if False else
                           STANDARD_SPECS["CTP"], name="CTP")
        assert analyzed.depend_plans[0].new_pos_vars == ("pos",)
        assert analyzed.depend_plans[1].new_pos_vars == ()

    def test_implicit_existential_names(self):
        # section 2.2's example: Sj appears only inside the condition
        analyzed = analyze(
            """
            TYPE
              Stmt: Si, Sj;
              Loop: L1, L2;
            PRECOND
              Code_Pattern
                any L1;
                any L2;
              Depend
                any Si: mem(Si, L1) AND mem(Sj, L2),
                   flow_dep(Si, Sj, (=)) OR anti_dep(Si, Sj, (=));
            ACTION
              delete(Si);
            """
        )
        assert set(analyzed.depend_plans[0].search_vars) == {"Si", "Sj"}

    def test_all_catalog_specs_analyze(self):
        for name, source in STANDARD_SPECS.items():
            analyzed = analyze(source, name=name)
            assert analyzed.spec.name == name


class TestErrors:
    def base(self, pattern="any Si: Si.opc == assign;", depend="",
             action="delete(Si);", types="Stmt: Si;"):
        return f"""
            TYPE
              {types}
            PRECOND
              Code_Pattern
                {pattern}
              Depend
                {depend}
            ACTION
              {action}
            """

    def test_undeclared_element(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(pattern="any Sz: Sz.opc == assign;"))

    def test_undeclared_in_condition(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(depend="no Sq: flow_dep(Si, Sq);"))

    def test_dep_condition_in_pattern_rejected(self):
        with pytest.raises(GospelSemanticError):
            analyze(
                self.base(
                    types="Stmt: Si, Sj;",
                    pattern="any Si: flow_dep(Si, Sj);",
                )
            )

    def test_bad_statement_attribute(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(pattern="any Si: Si.head == assign;"))

    def test_bad_loop_attribute(self):
        with pytest.raises(GospelSemanticError):
            analyze(
                self.base(
                    types="Loop: L1;",
                    pattern="any L1: L1.opr_2 == const;",
                    action="delete(L1);",
                )
            )

    def test_attribute_of_operand_rejected(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(pattern="any Si: Si.opr_1.opc == assign;"))

    def test_unknown_symbol_rejected(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(pattern="any Si: Si.opc == banana;"))

    def test_pos_name_colliding_with_element(self):
        with pytest.raises(GospelSemanticError):
            analyze(
                self.base(
                    types="Stmt: Si, Sj;",
                    depend="any (Sj, Si): flow_dep(Si, Sj);",
                )
            )

    def test_position_capture_in_pattern_rejected(self):
        with pytest.raises(GospelSemanticError):
            analyze(
                self.base(pattern="any (Si, pos): Si.opc == assign;")
            )

    def test_action_unbound_name(self):
        with pytest.raises(GospelSemanticError):
            analyze(self.base(action="delete(Sq);"))

    def test_statement_as_set_rejected(self):
        with pytest.raises(GospelSemanticError):
            analyze(
                self.base(
                    types="Stmt: Si, Sj;",
                    depend="no Sj: mem(Sj, Si), flow_dep(Si, Sj);",
                )
            )

    def test_spec_without_patterns_rejected(self):
        from repro.gospel.ast import Specification

        spec = Specification(
            name="E", declarations=(), patterns=(), depends=(), actions=()
        )
        with pytest.raises(GospelSemanticError):
            analyze_spec(spec)


class TestWarnings:
    def test_no_in_code_pattern_warns(self):
        analyzed = analyze(
            """
            TYPE
              Stmt: Si, Sj;
            PRECOND
              Code_Pattern
                any Si;
                no Sj: Sj.opc == assign;
              Depend
            ACTION
              delete(Si);
            """
        )
        assert any("no" in w for w in analyzed.warnings)
