"""Unit tests for the GOSpeL tokenizer."""

import pytest

from repro.gospel.errors import GospelSyntaxError
from repro.gospel.tokens import GTok, tokenize


def test_keywords_case_insensitive():
    tokens = tokenize("TYPE Precond code_pattern DEPEND action")
    assert all(t.kind is GTok.KEYWORD for t in tokens[:-1])
    assert tokens[0].text == "type"


def test_identifiers_keep_case():
    tokens = tokenize("Si Sj L1")
    assert [t.text for t in tokens[:-1]] == ["Si", "Sj", "L1"]


def test_numbers():
    tokens = tokenize("12 3.5")
    assert tokens[0].value == 12
    assert tokens[1].value == 3.5


def test_multi_char_operators():
    tokens = tokenize("== != <= >=")
    assert [t.text for t in tokens[:-1]] == ["==", "!=", "<=", ">="]


def test_single_char_operators():
    tokens = tokenize("; : , . ( ) { } < > = * + - /")
    assert all(t.kind is GTok.OP for t in tokens[:-1])


def test_comments_stripped():
    tokens = tokenize("any /* find it */ Si")
    assert [t.text for t in tokens[:-1]] == ["any", "Si"]


def test_multiline_comment_tracks_lines():
    tokens = tokenize("/* one\ntwo */ Si")
    assert tokens[0].line == 2


def test_unterminated_comment():
    with pytest.raises(GospelSyntaxError):
        tokenize("/* never ends")


def test_unexpected_character():
    with pytest.raises(GospelSyntaxError):
        tokenize("Si @ Sj")


def test_eof_token():
    assert tokenize("")[-1].kind is GTok.EOF
