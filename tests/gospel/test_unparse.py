"""Round-trip tests for the GOSpeL unparser.

The contract (``src/repro/gospel/unparse.py``) is::

    parse_spec(unparse_spec(spec), spec.name) == normalize_spec(spec)

checked here over the complete shipped catalog (standard, extended,
variant, inferred, and the deliberately broken fixtures) and over
synthesized ASTs: the abstraction-ladder candidates the inference
subsystem builds programmatically, plus hypothesis-composed
specifications assembled from random condition/action fragments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gospel.ast import (
    BoolOp,
    Arith,
    Binder,
    Compare,
    Declaration,
    DeleteAction,
    DepCond,
    DependClause,
    ElemType,
    ModifyAction,
    NumberLit,
    PatternClause,
    Quant,
    Ref,
    Specification,
    SymbolLit,
)
from repro.gospel.parser import parse_spec
from repro.gospel.unparse import (
    GospelUnparseError,
    normalize_spec,
    roundtrips,
    unparse_spec,
)
from repro.opts.extended import EXTENDED_SPECS
from repro.opts.inferred import INFERRED_SPECS
from repro.opts.specs import STANDARD_SPECS, VARIANT_SPECS
from repro.synth.generalize import ladder
from repro.synth.mine import PLANT_TEMPLATES, PairGenerator, mine_pairs
from repro.verify.fixtures import BROKEN_SPECS

FULL_CATALOG = {
    **STANDARD_SPECS,
    **EXTENDED_SPECS,
    **VARIANT_SPECS,
    **INFERRED_SPECS,
    **BROKEN_SPECS,
}


# ----------------------------------------------------------------------
# shipped catalog
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(FULL_CATALOG))
def test_catalog_spec_roundtrips(name):
    spec = parse_spec(FULL_CATALOG[name], name=name)
    assert roundtrips(spec), unparse_spec(spec)


@pytest.mark.parametrize("name", sorted(FULL_CATALOG))
def test_unparse_is_idempotent(name):
    """unparse(parse(unparse(spec))) == unparse(spec): the printed form
    is a fixed point, so emitted catalog files never churn."""
    spec = parse_spec(FULL_CATALOG[name], name=name)
    once = unparse_spec(spec)
    twice = unparse_spec(parse_spec(once, name=name))
    assert once == twice


# ----------------------------------------------------------------------
# synthesized ASTs: the abstraction ladder builds specs as ASTs
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=200),
    index=st.integers(min_value=0, max_value=len(PLANT_TEMPLATES) - 1),
)
def test_ladder_candidates_roundtrip(seed, index):
    generator = PairGenerator(seed=seed)
    windows = mine_pairs([generator.pair(index)])
    for window in windows:
        for candidate in ladder(window):
            assert roundtrips(candidate.spec), candidate.source


# ----------------------------------------------------------------------
# hypothesis-composed specifications
# ----------------------------------------------------------------------
_OPC_SYMBOLS = ("assign", "add", "sub", "mul", "div", "mod", "pow")
_FIELDS = ("opr_1", "opr_2", "opr_3")

_values = st.one_of(
    st.integers(min_value=-9, max_value=9).map(NumberLit),
    st.sampled_from(_OPC_SYMBOLS + ("var", "const", "none")).map(
        lambda name: SymbolLit(name)
    ),
    st.sampled_from(_FIELDS).map(lambda f: Ref(base="Si", attrs=(f,))),
)


def _compare(relop, left, right):
    return Compare(relop=relop, left=left, right=right)


_conds = st.one_of(
    st.tuples(st.sampled_from(("==", "!=")), _values, _values).map(
        lambda t: _compare(t[0], t[1], t[2])
    ),
    st.tuples(_values, _values).map(
        lambda t: _compare("==", Arith(op="+", left=t[0], right=t[1]), t[1])
    ),
)


def _conjunction(conds):
    if len(conds) == 1:
        return conds[0]
    return BoolOp(op="and", terms=tuple(conds))


_specs = st.builds(
    lambda conds, guarded, actions: Specification(
        name="HYP",
        declarations=(
            Declaration(
                elem_type=ElemType.STMT,
                names=("Si", "Sj") if guarded else ("Si",),
            ),
        ),
        patterns=(
            PatternClause(
                quant=Quant.ANY,
                binders=(Binder("Si"),),
                format=_conjunction(conds),
            ),
        ),
        depends=(
            (
                DependClause(
                    quant=Quant.NO,
                    binders=(Binder("Sj"),),
                    memberships=(),
                    condition=DepCond(
                        kind="flow", src=Ref("Si"), dst=Ref("Sj")
                    ),
                ),
            )
            if guarded
            else ()
        ),
        actions=actions,
    ),
    conds=st.lists(_conds, min_size=1, max_size=4).map(tuple),
    guarded=st.booleans(),
    actions=st.one_of(
        st.just((DeleteAction(target=Ref("Si")),)),
        st.lists(
            st.tuples(st.sampled_from(_FIELDS), _values).map(
                lambda t: ModifyAction(
                    lvalue=Ref(base="Si", attrs=(t[0],)), new_value=t[1]
                )
            ),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
)


@settings(max_examples=100, deadline=None)
@given(spec=_specs)
def test_composed_specs_roundtrip(spec):
    assert roundtrips(spec), unparse_spec(spec)


# ----------------------------------------------------------------------
# unparsable nodes are refused, not mangled
# ----------------------------------------------------------------------
def _minimal(**overrides):
    base = dict(
        name="BAD",
        declarations=(
            Declaration(elem_type=ElemType.STMT, names=("Si",)),
        ),
        patterns=(
            PatternClause(quant=Quant.ANY, binders=(Binder("Si"),), format=None),
        ),
        depends=(),
        actions=(DeleteAction(target=Ref("Si")),),
    )
    base.update(overrides)
    return Specification(**base)


def test_unsplit_pair_binder_is_refused():
    spec = _minimal(
        patterns=(
            PatternClause(
                quant=Quant.ANY,
                binders=(Binder("L1\0L2"),),
                format=None,
            ),
        ),
    )
    with pytest.raises(GospelUnparseError):
        unparse_spec(spec)


def test_empty_declaration_is_refused():
    spec = _minimal(
        declarations=(Declaration(elem_type=ElemType.STMT, names=()),),
    )
    with pytest.raises(GospelUnparseError):
        unparse_spec(spec)


def test_unspellable_number_is_refused():
    spec = _minimal(
        patterns=(
            PatternClause(
                quant=Quant.ANY,
                binders=(Binder("Si"),),
                format=Compare(
                    relop="==",
                    left=Ref(base="Si", attrs=("opr_2",)),
                    right=NumberLit(float("inf")),
                ),
            ),
        ),
    )
    with pytest.raises(GospelUnparseError):
        unparse_spec(spec)


def test_normalize_folds_negative_literal_spellings():
    minus = Arith(op="-", left=NumberLit(0), right=NumberLit(3))
    spec_a = _minimal(
        patterns=(
            PatternClause(
                quant=Quant.ANY,
                binders=(Binder("Si"),),
                format=Compare(
                    relop="==",
                    left=Ref(base="Si", attrs=("opr_2",)),
                    right=minus,
                ),
            ),
        ),
    )
    spec_b = _minimal(
        patterns=(
            PatternClause(
                quant=Quant.ANY,
                binders=(Binder("Si"),),
                format=Compare(
                    relop="==",
                    left=Ref(base="Si", attrs=("opr_2",)),
                    right=NumberLit(-3),
                ),
            ),
        ),
    )
    assert normalize_spec(spec_a) == normalize_spec(spec_b)
