"""Tests for the ``genesis`` command-line tool."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerate:
    def test_catalog_name(self, capsys):
        code, out, err = run_cli(capsys, "generate", "CTP")
        assert code == 0
        assert "def act_CTP(ctx):" in out
        assert "CTP:" in err

    def test_extended_name(self, capsys):
        code, out, _err = run_cli(capsys, "generate", "RVS")
        assert code == 0
        assert "def pre_RVS(ctx):" in out

    def test_from_file(self, capsys, tmp_path):
        spec = tmp_path / "nop.gospel"
        spec.write_text(
            """
            TYPE
              Stmt: Si;
            PRECOND
              Code_Pattern
                any Si: Si.opc == assign;
              Depend
            ACTION
              modify(Si.opr_2, Si.opr_2);
            """
        )
        code, out, _err = run_cli(capsys, "generate", str(spec))
        assert code == 0
        assert "def act_NOP(ctx):" in out

    def test_policy_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "generate", "PAR", "--policy", "deps"
        )
        assert code == 0
        assert "lib.dep_candidates(ctx," in out


class TestOptimize:
    def test_workload_by_name(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "integrate", "--opts", "CTP,CFO,DCE"
        )
        assert code == 0
        assert "CTP:" in out and "DCE:" in out

    def test_show_prints_program(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "newton", "--opts", "CTP", "--show"
        )
        assert code == 0
        assert "do k = 1, 12" in out  # maxit propagated

    def test_once_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "poly", "--opts", "CTP", "--once"
        )
        assert code == 0
        assert "1 application(s)" in out

    def test_source_file(self, capsys, tmp_path):
        source = tmp_path / "p.f"
        source.write_text(
            "program p\n  integer x\n  x = 2 * 3\n  write x\nend\n"
        )
        code, out, _err = run_cli(
            capsys, "optimize", str(source), "--opts", "CFO", "--show"
        )
        assert code == 0
        assert "x := 6" in out


class TestOthers:
    def test_suite_lists_programs(self, capsys):
        code, out, _err = run_cli(capsys, "suite")
        assert code == 0
        assert "newton" in out and "ordering" in out

    def test_no_command_shows_help(self, capsys):
        code, out, _err = run_cli(capsys)
        assert code == 2
        assert "usage" in out.lower()

    def test_experiments_subset(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        code, _out, _err = run_cli(
            capsys, "experiments", "--only", "E6", "--out", str(target)
        )
        assert code == 0
        assert "E6a" in target.read_text()

    def test_interact_reads_commands(self, capsys, monkeypatch):
        commands = iter(["list", "apply CTP all", "quit"])
        monkeypatch.setattr(
            "builtins.input", lambda _prompt: next(commands)
        )
        code, out, _err = run_cli(
            capsys, "interact", "integrate", "--opts", "CTP,DCE"
        )
        assert code == 0
        assert "CTP" in out
