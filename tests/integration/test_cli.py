"""Tests for the ``genesis`` command-line tool."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerate:
    def test_catalog_name(self, capsys):
        code, out, err = run_cli(capsys, "generate", "CTP")
        assert code == 0
        assert "def act_CTP(ctx):" in out
        assert "CTP:" in err

    def test_extended_name(self, capsys):
        code, out, _err = run_cli(capsys, "generate", "RVS")
        assert code == 0
        assert "def pre_RVS(ctx):" in out

    def test_from_file(self, capsys, tmp_path):
        spec = tmp_path / "nop.gospel"
        spec.write_text(
            """
            TYPE
              Stmt: Si;
            PRECOND
              Code_Pattern
                any Si: Si.opc == assign;
              Depend
            ACTION
              modify(Si.opr_2, Si.opr_2);
            """
        )
        code, out, _err = run_cli(capsys, "generate", str(spec))
        assert code == 0
        assert "def act_NOP(ctx):" in out

    def test_policy_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "generate", "PAR", "--policy", "deps"
        )
        assert code == 0
        assert "lib.dep_candidates(ctx," in out


class TestOptimize:
    def test_workload_by_name(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "integrate", "--opts", "CTP,CFO,DCE"
        )
        assert code == 0
        assert "CTP:" in out and "DCE:" in out

    def test_show_prints_program(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "newton", "--opts", "CTP", "--show"
        )
        assert code == 0
        assert "do k = 1, 12" in out  # maxit propagated

    def test_once_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "optimize", "poly", "--opts", "CTP", "--once"
        )
        assert code == 0
        assert "1 application(s)" in out

    def test_source_file(self, capsys, tmp_path):
        source = tmp_path / "p.f"
        source.write_text(
            "program p\n  integer x\n  x = 2 * 3\n  write x\nend\n"
        )
        code, out, _err = run_cli(
            capsys, "optimize", str(source), "--opts", "CFO", "--show"
        )
        assert code == 0
        assert "x := 6" in out


class TestOthers:
    def test_suite_lists_programs(self, capsys):
        code, out, _err = run_cli(capsys, "suite")
        assert code == 0
        assert "newton" in out and "ordering" in out

    def test_no_command_shows_help(self, capsys):
        code, out, _err = run_cli(capsys)
        assert code == 2
        assert "usage" in out.lower()

    def test_experiments_subset(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        code, _out, _err = run_cli(
            capsys, "experiments", "--only", "E6", "--out", str(target)
        )
        assert code == 0
        assert "E6a" in target.read_text()

    def test_interact_reads_commands(self, capsys, monkeypatch):
        commands = iter(["list", "apply CTP all", "quit"])
        monkeypatch.setattr(
            "builtins.input", lambda _prompt: next(commands)
        )
        code, out, _err = run_cli(
            capsys, "interact", "integrate", "--opts", "CTP,DCE"
        )
        assert code == 0
        assert "CTP" in out


class TestServiceVerbs:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"genesis {__version__}"
        assert __version__ != "0+unknown"

    def test_submit_workload(self, capsys):
        code, out, _err = run_cli(
            capsys, "submit", "fft", "--opts", "CTP,DCE",
            "--backend", "inprocess", "--show",
        )
        assert code == 0
        assert "completed" in out
        assert "program fft" in out

    def test_submit_bad_program_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.f"
        bad.write_text("this is not fortran")
        code, _out, err = run_cli(
            capsys, "submit", str(bad), "--backend", "inprocess"
        )
        assert code == 3
        assert "error" in err

    def test_submit_unknown_optimization(self, capsys):
        code, _out, err = run_cli(
            capsys, "submit", "fft", "--opts", "NOSUCH",
            "--backend", "inprocess",
        )
        assert code == 3
        assert "unknown optimization" in err

    def test_batch_caches_duplicates(self, capsys, tmp_path):
        out_json = tmp_path / "results.json"
        code, out, _err = run_cli(
            capsys, "batch", "fft", "newton", "fft",
            "--opts", "CTP,DCE", "--backend", "inprocess",
            "--json", str(out_json),
        )
        assert code == 0
        assert "[cached]" in out
        import json

        payload = json.loads(out_json.read_text())
        assert len(payload["results"]) == 3
        assert payload["results"][2]["cached"]

    def test_serve_json_lines(self, capsys, monkeypatch):
        import io
        import json

        requests = "\n".join([
            json.dumps({"workload": "fft", "opts": "CTP,DCE"}),
            json.dumps({"workload": "missing"}),
            json.dumps({"cmd": "wait", "job_id": 999}),
            json.dumps({"cmd": "stats"}),
            json.dumps({"cmd": "quit"}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        code, out, err = run_cli(
            capsys, "serve", "--backend", "inprocess"
        )
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert lines[0]["status"] == "completed"
        assert lines[0]["source"].startswith("program fft")
        assert "unknown workload" in lines[1]["error"]
        # a bad wait request is an error object, not a dead server
        assert "unknown job id" in lines[2]["error"]
        assert "submitted" in lines[3]["stats"]
        from repro import __version__

        assert f"v{__version__}" in err

    def test_fuzz_workers_flag(self, capsys):
        code, out, _err = run_cli(
            capsys, "fuzz", "--iterations", "2", "--opts", "CTP,DCE",
            "--workers", "1",
        )
        assert code == 0
        assert "OK" in out


class TestSearch:
    ARGS = (
        "search", "integrate",
        "--opts", "CTP,CFO,DCE", "--depth", "2", "--budget", "20",
    )

    def test_search_workload_certifies(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "search.json"
        code, out, _err = run_cli(
            capsys, *self.ARGS, "--json", str(out_json)
        )
        assert code == 0
        assert "best pipeline" in out
        assert "oracle: PASSED" in out
        payload = json.loads(out_json.read_text())
        assert payload[0]["name"] == "integrate"
        assert payload[0]["certified"] is True
        assert payload[0]["best_sequence"]

    def test_search_is_bit_reproducible(self, capsys):
        code_a, out_a, _ = run_cli(capsys, *self.ARGS, "--seed", "7")
        code_b, out_b, _ = run_cli(capsys, *self.ARGS, "--seed", "7")
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_search_through_service_workers(self, capsys):
        code, out, _err = run_cli(
            capsys, *self.ARGS, "--workers", "1",
            "--backend", "inprocess", "--strategy", "iterated",
            "--iterations", "2",
        )
        assert code == 0
        assert "cache hit" in out

    def test_search_unknown_pass(self, capsys):
        code, _out, err = run_cli(
            capsys, "search", "integrate", "--opts", "NOSUCH"
        )
        assert code == 3
        assert "unknown optimization" in err

    def test_interact_search_command(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("search greedy 2 12\nquit\n")
        )
        code, out, _err = run_cli(
            capsys, "interact", "integrate", "--opts", "CTP,CFO,DCE"
        )
        assert code == 0
        assert "best pipeline" in out
