"""End-to-end integration tests: the full Figure 3 pipeline, optimizer
chains, the interactive session, and the public API surface."""

import pytest

import repro
from repro.genesis.pipeline import optimize_source
from repro.genesis.session import OptimizerSession
from repro.ir.interp import run_program
from repro.ir.quad import Opcode


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_readme_quickstart_flow(self):
        program = repro.parse_program(
            """
            program demo
              integer i, n
              real a(10)
              n = 4
              do i = 1, n
                a(i) = a(i) + 1.0
              end do
              write a(2)
            end
            """
        )
        ctp = repro.generate_optimizer(
            repro.STANDARD_SPECS["CTP"], name="CTP"
        )
        assert "def act_CTP" in ctp.source
        repro.run_optimizer(
            ctp, program, repro.DriverOptions(apply_all=True)
        )
        assert "do i = 1, 4" in repro.format_program(program)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestFigure3Pipeline:
    SOURCE = """
        program kernel
          integer i, n
          real a(8), b(8), s
          n = 4
          s = 0.0
          do i = 1, n
            a(i) = b(i) * 2.0
          end do
          do i = 1, n
            s = s + a(i)
          end do
          write s
        end
    """

    def test_classic_sequence(self, optimizers):
        report = optimize_source(
            self.SOURCE,
            [optimizers[name] for name in ("CTP", "CFO", "LUR", "DCE")],
        )
        counts = report.applications_by_optimizer()
        assert counts["CTP"] >= 2
        assert counts["LUR"] == 2  # both loops unrolled after CTP
        program = report.program
        assert all(q.opcode is not Opcode.DO for q in program)

    def test_sequence_preserves_output(self, optimizers):
        baseline = run_program(
            repro.parse_program(self.SOURCE),
            arrays={"b": {(i,): float(i) for i in range(1, 5)}},
        ).observable()
        report = optimize_source(
            self.SOURCE,
            [optimizers[name] for name in ("CTP", "CFO", "LUR", "FUS",
                                           "PAR", "DCE")],
        )
        transformed = run_program(
            report.program,
            arrays={"b": {(i,): float(i) for i in range(1, 5)}},
        ).observable()
        assert transformed == baseline


class TestInteractiveScenario:
    def test_parallelization_walkthrough(self, optimizers):
        session = OptimizerSession.from_source(
            """
            program walk
              integer i, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                a(i) = b(i) + 1.0
              end do
              do i = 2, n
                a(i) = a(i-1) * 0.5
              end do
              write a(4)
            end
            """,
            optimizers=[optimizers["CTP"], optimizers["PAR"]],
        )
        # the user inspects points, applies CTP everywhere, then asks
        # which loops parallelize: only the first (no recurrence)
        assert len(session.points("PAR")) == 1
        session.execute_command("apply CTP all")
        session.execute_command("apply PAR all")
        doalls = [q for q in session.program if q.opcode is Opcode.DOALL]
        assert len(doalls) == 1
        # and the recurrence loop stayed sequential
        assert any(q.opcode is Opcode.DO for q in session.program)


class TestGeneratedVsHandcodedEndToEnd:
    def test_same_final_program_for_ctp(self, optimizers, suite_by_name):
        from repro.genesis.driver import DriverOptions, run_optimizer
        from repro.opts.handcoded import handcoded_optimizer

        item = suite_by_name["integrate"]
        generated_program = item.load()
        run_optimizer(
            optimizers["CTP"], generated_program,
            DriverOptions(apply_all=True),
        )
        handcoded_program = item.load()
        handcoded_optimizer("CTP").apply_all(handcoded_program)
        assert [str(q) for q in generated_program] == [
            str(q) for q in handcoded_program
        ]


class TestCustomOptimization:
    def test_user_defined_negation_folding(self):
        """Users can write novel optimizations (the paper's pitch)."""
        spec = """
        TYPE
          Stmt: Si;
        PRECOND
          Code_Pattern
            /* fold x := neg(const) into a plain constant assign */
            any Si: Si.opc == neg AND type(Si.opr_2) == const;
          Depend
        ACTION
          modify(Si.opr_2, value(Si));
          modify(Si.opc, assign);
        """
        optimizer = repro.generate_optimizer(spec, name="NEGFOLD")
        b = repro.IRBuilder()
        b.unary("x", "neg", 5)
        b.write("x")
        program = b.build()
        repro.run_optimizer(
            optimizer, program, repro.DriverOptions(apply_all=True)
        )
        assert "x := -5" in repro.format_program(program)
