"""Unit tests for the IR builder DSL."""

import pytest

from repro.ir.builder import IRBuilder, as_operand, as_subscript
from repro.ir.quad import Opcode
from repro.ir.types import Affine, ArrayRef, Const, Var


class TestCoercions:
    def test_as_operand(self):
        assert as_operand("x") == Var("x")
        assert as_operand(3) == Const(3)
        assert as_operand(2.5) == Const(2.5)
        assert as_operand(Var("y")) == Var("y")

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand([1, 2])

    def test_as_subscript(self):
        assert as_subscript("i") == Affine.var("i")
        assert as_subscript(4) == Affine.constant(4)
        assert as_subscript(Affine.of(1, i=1)) == Affine.of(1, i=1)


class TestEmission:
    def test_assign_and_binary(self):
        b = IRBuilder()
        b.assign("x", 1)
        b.binary("y", "x", "+", 2)
        program = b.build()
        assert program[0].opcode is Opcode.ASSIGN
        assert program[1].opcode is Opcode.ADD

    def test_binary_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            IRBuilder().binary("x", "y", "@", "z")

    def test_unary(self):
        b = IRBuilder()
        b.unary("x", "sqrt", "y")
        assert b.build()[0].opcode is Opcode.SQRT

    def test_unary_rejects_unknown(self):
        with pytest.raises(ValueError):
            IRBuilder().unary("x", "tan", "y")

    def test_arr_builds_reference(self):
        b = IRBuilder()
        ref = b.arr("a", "i", 2)
        assert ref == ArrayRef("a", (Affine.var("i"), Affine.constant(2)))

    def test_temps_are_fresh(self):
        b = IRBuilder()
        assert b.temp() != b.temp()

    def test_read_write(self):
        b = IRBuilder()
        b.read("x")
        b.write("x")
        program = b.build()
        assert program[0].opcode is Opcode.READ
        assert program[1].opcode is Opcode.WRITE


class TestRegions:
    def test_loop_region(self):
        b = IRBuilder()
        with b.loop("i", 1, 5, step=2) as head:
            b.assign("x", "i")
        program = b.build()
        assert program[0] is head
        assert head.step == Const(2)
        assert program[2].opcode is Opcode.ENDDO

    def test_parallel_loop(self):
        b = IRBuilder()
        with b.loop("i", 1, 5, parallel=True):
            b.assign("x", "i")
        assert b.build()[0].opcode is Opcode.DOALL

    def test_if_region(self):
        b = IRBuilder()
        with b.if_("x", "<", 0):
            b.assign("y", 1)
        program = b.build()
        assert program[0].opcode is Opcode.IF
        assert program[-1].opcode is Opcode.ENDIF

    def test_if_else_region(self):
        b = IRBuilder()
        with b.if_else("x", "==", 0) as (_guard, orelse):
            b.assign("y", 1)
            orelse.begin()
            b.assign("y", 2)
        opcodes = [q.opcode for q in b.build()]
        assert Opcode.ELSE in opcodes

    def test_if_else_without_begin_raises(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            with b.if_else("x", "==", 0):
                b.assign("y", 1)

    def test_orelse_begin_twice_raises(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            with b.if_else("x", "==", 0) as (_guard, orelse):
                orelse.begin()
                orelse.begin()
