"""Unit tests for the reference interpreter."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.interp import (
    InterpError,
    run_program,
    same_behaviour,
)
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var


class TestArithmetic:
    @pytest.mark.parametrize(
        "symbol,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("/", 7, 2, 3.5),
            ("/", 8, 2, 4),
            ("mod", 7, 3, 1),
            ("**", 2, 5, 32),
        ],
    )
    def test_binary(self, symbol, left, right, expected):
        b = IRBuilder()
        b.binary("x", left, symbol, right)
        b.write("x")
        assert run_program(b.build()).output == [expected]

    @pytest.mark.parametrize(
        "name,value,expected",
        [
            ("neg", 3, -3),
            ("abs", -4, 4),
            ("sqrt", 9, 3.0),
        ],
    )
    def test_unary(self, name, value, expected):
        b = IRBuilder()
        b.unary("x", name, value)
        b.write("x")
        assert run_program(b.build()).output == [expected]

    def test_trig(self):
        import math

        b = IRBuilder()
        b.unary("s", "sin", 0)
        b.unary("c", "cos", 0)
        b.unary("e", "exp", 1)
        b.write("s")
        b.write("c")
        b.write("e")
        out = run_program(b.build()).output
        assert out[0] == 0 and out[1] == 1
        assert abs(out[2] - math.e) < 1e-12

    def test_division_by_zero(self):
        b = IRBuilder()
        b.binary("x", 1, "/", 0)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_sqrt_of_negative(self):
        b = IRBuilder()
        b.unary("x", "sqrt", -1)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_log_of_zero(self):
        b = IRBuilder()
        b.unary("x", "log", 0)
        with pytest.raises(InterpError):
            run_program(b.build())


class TestControlFlow:
    def test_loop_counts(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 1, 5):
            b.binary("s", "s", "+", "i")
        b.write("s")
        assert run_program(b.build()).output == [15]

    def test_loop_with_step(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 1, 9, step=3):
            b.binary("s", "s", "+", "i")
        b.write("s")
        assert run_program(b.build()).output == [1 + 4 + 7]

    def test_negative_step(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 3, 1, step=-1):
            b.binary("s", "s", "*", 10)
            b.binary("s", "s", "+", "i")
        b.write("s")
        assert run_program(b.build()).output == [321]

    def test_zero_trip_loop(self):
        b = IRBuilder()
        b.assign("s", 7)
        with b.loop("i", 5, 1):
            b.assign("s", 0)
        b.write("s")
        assert run_program(b.build()).output == [7]

    def test_lcv_after_loop_follows_fortran(self):
        b = IRBuilder()
        with b.loop("i", 1, 4):
            b.assign("x", "i")
        b.write("i")
        assert run_program(b.build()).output == [5]

    def test_zero_step_raises(self):
        b = IRBuilder()
        with b.loop("i", 1, 4, step=0):
            b.assign("x", "i")
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_if_then_taken(self):
        b = IRBuilder()
        b.assign("x", 5)
        with b.if_("x", ">", 0):
            b.assign("y", 1)
        b.write("y")
        assert run_program(b.build()).output == [1]

    def test_if_then_skipped(self):
        b = IRBuilder()
        b.assign("x", -5)
        with b.if_("x", ">", 0):
            b.assign("y", 1)
        b.write("y")
        assert run_program(b.build()).output == [0]

    def test_if_else(self):
        b = IRBuilder()
        b.assign("x", -5)
        with b.if_else("x", ">", 0) as (_g, orelse):
            b.assign("y", 1)
            orelse.begin()
            b.assign("y", 2)
        b.write("y")
        assert run_program(b.build()).output == [2]

    @pytest.mark.parametrize("relop,expected", [
        ("<", 0), ("<=", 1), (">", 0), (">=", 1), ("==", 1), ("!=", 0),
    ])
    def test_relops(self, relop, expected):
        b = IRBuilder()
        b.assign("x", 3)
        with b.if_(Var("x"), relop, 3):
            b.assign("y", 1)
        b.write("y")
        assert run_program(b.build()).output == [expected]

    def test_doall_executes_sequentially(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 1, 4, parallel=True):
            b.binary("s", "s", "+", 1)
        b.write("s")
        assert run_program(b.build()).output == [4]

    def test_nested_loops(self):
        b = IRBuilder()
        b.assign("s", 0)
        with b.loop("i", 1, 3):
            with b.loop("j", 1, 4):
                b.binary("s", "s", "+", 1)
        b.write("s")
        assert run_program(b.build()).output == [12]


class TestIO:
    def test_read_consumes_inputs(self):
        b = IRBuilder()
        b.read("x")
        b.read("y")
        b.binary("z", "x", "+", "y")
        b.write("z")
        assert run_program(b.build(), inputs=[3, 4]).output == [7]

    def test_read_past_end_yields_zero(self):
        b = IRBuilder()
        b.read("x")
        b.write("x")
        assert run_program(b.build()).output == [0]

    def test_array_elements(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            b.assign(b.arr("a", "i"), "i")
        b.write(b.arr("a", 2))
        assert run_program(b.build()).output == [2]

    def test_uninitialized_reads_are_zero(self):
        b = IRBuilder()
        b.write("nothing")
        b.write(b.arr("a", 5))
        assert run_program(b.build()).output == [0, 0]


class TestStateAndLimits:
    def test_initial_scalars_and_arrays(self):
        b = IRBuilder()
        b.binary("y", "x", "+", b.arr("a", 1))
        b.write("y")
        result = run_program(
            b.build(), scalars={"x": 10}, arrays={"a": {(1,): 5}}
        )
        assert result.output == [15]

    def test_result_carries_final_state(self):
        b = IRBuilder()
        b.assign("x", 42)
        b.assign(b.arr("a", 3), 7)
        result = run_program(b.build())
        assert result.scalars["x"] == 42
        assert result.arrays["a"][(3,)] == 7

    def test_step_budget(self):
        b = IRBuilder()
        with b.loop("i", 1, 1000):
            b.assign("x", "i")
        with pytest.raises(InterpError):
            run_program(b.build(), max_steps=100)

    def test_opcode_counts(self):
        b = IRBuilder()
        with b.loop("i", 1, 3):
            b.binary("x", "i", "*", 2)
        counts = run_program(b.build()).opcode_counts
        assert counts[Opcode.MUL] == 3

    def test_observable_rounds_floats(self):
        b1 = IRBuilder()
        b1.assign("x", 0.1 + 0.2)
        b1.write("x")
        b2 = IRBuilder()
        b2.assign("x", 0.3)
        b2.write("x")
        assert same_behaviour(b1.build(), b2.build())

    def test_same_behaviour_detects_difference(self):
        b1 = IRBuilder()
        b1.write(1)
        b2 = IRBuilder()
        b2.write(2)
        assert not same_behaviour(b1.build(), b2.build())

    def test_nop_is_skipped(self):
        from repro.ir.program import Program

        program = Program()
        program.append(Quad(Opcode.NOP))
        program.append(Quad(Opcode.WRITE, a=Const(1)))
        assert run_program(program).output == [1]


class TestTypedRuntimeErrors:
    """The oracle satellite: no raw KeyError/IndexError/ZeroDivisionError
    /OverflowError ever escapes the interpreter."""

    def test_strict_uninitialized_scalar(self):
        from repro.ir.interp import UninitializedError

        b = IRBuilder()
        b.binary("y", "x", "+", 1)
        b.write("y")
        program = b.build()
        assert run_program(program).output == [1]  # permissive default
        with pytest.raises(UninitializedError):
            run_program(program, strict=True)
        assert run_program(program, strict=True, scalars={"x": 2}).output == [3]

    def test_strict_uninitialized_array_cell(self):
        from repro.ir.interp import UninitializedError

        b = IRBuilder()
        b.assign("y", b.arr("a", 5))
        b.write("y")
        program = b.build()
        assert run_program(program).output == [0]
        with pytest.raises(UninitializedError):
            run_program(program, strict=True)
        result = run_program(program, strict=True, arrays={"a": {(5,): 9}})
        assert result.output == [9]

    def test_array_bounds_checked_on_load_and_store(self):
        from repro.ir.interp import BoundsError

        load = IRBuilder()
        load.assign("y", load.arr("a", 20))
        with pytest.raises(BoundsError):
            run_program(load.build(), array_bounds={"a": ((1, 12),)})

        store = IRBuilder()
        store.assign(store.arr("a", 0), 1)
        with pytest.raises(BoundsError):
            run_program(store.build(), array_bounds={"a": ((1, 12),)})

    def test_array_bounds_rank_mismatch(self):
        from repro.ir.interp import BoundsError

        b = IRBuilder()
        b.assign("y", b.arr("a", 2))
        with pytest.raises(BoundsError):
            run_program(b.build(), array_bounds={"a": ((1, 8), (1, 8))})

    def test_in_bounds_access_passes(self):
        b = IRBuilder()
        b.assign(b.arr("a", 3), 7)
        b.write(b.arr("a", 3))
        result = run_program(b.build(), array_bounds={"a": ((1, 12),)})
        assert result.output == [7]

    def test_pow_zero_to_negative_is_interp_error(self):
        b = IRBuilder()
        b.binary("x", 0, "**", -1)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_pow_negative_base_fractional_exponent(self):
        b = IRBuilder()
        b.binary("x", -2, "**", 0.5)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_pow_huge_integer_exponent_guarded(self):
        b = IRBuilder()
        b.binary("x", 2, "**", 1_000_000)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_float_pow_overflow_is_interp_error(self):
        b = IRBuilder()
        b.binary("x", 1e308, "**", 2)
        with pytest.raises(InterpError):
            run_program(b.build())

    def test_exp_overflow_is_interp_error(self):
        b = IRBuilder()
        b.unary("x", "exp", 1e9)
        with pytest.raises(InterpError):
            run_program(b.build())
