"""Unit tests for loop/conditional structure recovery."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.loops import StructureTable, loop_attributes, trip_count
from repro.ir.program import IRError
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var


def nest_program():
    """do i { do j { body } }  followed by an adjacent loop."""
    b = IRBuilder()
    with b.loop("i", 1, 10) as outer:
        with b.loop("j", 1, 5) as inner:
            body = b.assign("x", "j")
    with b.loop("k", 1, 3) as third:
        b.assign("y", "k")
    return b.build(), outer, inner, body, third


class TestLoops:
    def test_loops_in_order(self):
        program, outer, inner, _body, third = nest_program()
        heads = [l.head_qid for l in StructureTable(program).loops_in_order()]
        assert heads == [outer.qid, inner.qid, third.qid]

    def test_depths_and_parents(self):
        program, outer, inner, _body, third = nest_program()
        table = StructureTable(program)
        assert table.loop_of(outer.qid).depth == 1
        assert table.loop_of(inner.qid).depth == 2
        assert table.loop_of(inner.qid).parent == outer.qid
        assert table.loop_of(third.qid).parent is None

    def test_children(self):
        program, outer, inner, _b, _t = nest_program()
        assert StructureTable(program).loop_of(outer.qid).children == [
            inner.qid
        ]

    def test_body_qids_include_nested_markers(self):
        program, outer, inner, body, _t = nest_program()
        table = StructureTable(program)
        assert body.qid in table.loop_of(outer.qid).body_qids
        assert inner.qid in table.loop_of(outer.qid).body_qids
        assert table.loop_of(inner.qid).body_qids == (body.qid,)

    def test_loop_of_non_head_raises(self):
        program, _o, _i, body, _t = nest_program()
        with pytest.raises(IRError):
            StructureTable(program).loop_of(body.qid)

    def test_member(self):
        program, outer, _i, body, third = nest_program()
        table = StructureTable(program)
        assert table.member(body.qid, outer.qid)
        assert not table.member(body.qid, third.qid)

    def test_enclosing_loop(self):
        program, outer, inner, body, _t = nest_program()
        table = StructureTable(program)
        assert table.enclosing_loop[body.qid] == inner.qid
        assert table.enclosing_loop[inner.qid] == outer.qid
        assert table.enclosing_loop[outer.qid] is None

    def test_nesting_depth(self):
        program, outer, _i, body, _t = nest_program()
        table = StructureTable(program)
        assert table.nesting_depth(body.qid) == 2
        assert table.nesting_depth(outer.qid) == 0


class TestPairs:
    def test_nested_pairs(self):
        program, outer, inner, _b, third = nest_program()
        pairs = StructureTable(program).nested_pairs()
        assert (outer.qid, inner.qid) in pairs
        assert (outer.qid, third.qid) not in pairs

    def test_tight_pairs(self):
        program, outer, inner, _b, _t = nest_program()
        assert StructureTable(program).tight_pairs() == [
            (outer.qid, inner.qid)
        ]

    def test_not_tight_with_statement_between_heads(self):
        b = IRBuilder()
        with b.loop("i", 1, 10) as outer:
            b.assign("t", 0)
            with b.loop("j", 1, 5) as inner:
                b.assign("x", "j")
        program = b.build()
        assert StructureTable(program).tight_pairs() == []
        assert (outer.qid, inner.qid) in StructureTable(
            program
        ).nested_pairs()

    def test_adjacent_pairs(self):
        program, outer, _i, _b, third = nest_program()
        assert StructureTable(program).adjacent_pairs() == [
            (outer.qid, third.qid)
        ]

    def test_perfect_nest(self):
        b = IRBuilder()
        with b.loop("i", 1, 4) as l1:
            with b.loop("j", 1, 4) as l2:
                with b.loop("k", 1, 4) as l3:
                    b.assign("x", 1)
        table = StructureTable(b.build())
        assert table.perfect_nest_from(l1.qid) == [l1.qid, l2.qid, l3.qid]

    def test_common_loops(self):
        program, outer, inner, body, third = nest_program()
        table = StructureTable(program)
        y_stmt = table.loop_of(third.qid).body_qids[0]
        assert [l.head_qid for l in table.common_loops(body.qid, body.qid)] \
            == [outer.qid, inner.qid]
        assert table.common_loops(body.qid, y_stmt) == []


class TestConditionals:
    def test_if_else_regions(self):
        b = IRBuilder()
        with b.if_else("x", ">", 0) as (guard, orelse):
            then_stmt = b.assign("y", 1)
            orelse.begin()
            else_stmt = b.assign("y", 2)
        table = StructureTable(b.build())
        cond = table.conditionals[guard.qid]
        assert then_stmt.qid in cond.then_qids
        assert else_stmt.qid in cond.else_qids
        assert else_stmt.qid not in cond.then_qids

    def test_controllers_stack(self):
        b = IRBuilder()
        with b.loop("i", 1, 5) as head:
            with b.if_("x", "<", 3) as guard:
                stmt = b.assign("y", 1)
        table = StructureTable(b.build())
        assert table.controllers[stmt.qid] == (head.qid, guard.qid)


class TestAttributes:
    def test_loop_attributes(self):
        b = IRBuilder()
        with b.loop("i", 2, "n", step=3) as head:
            b.assign("x", "i")
        program = b.build()
        attrs = loop_attributes(program, head.qid)
        assert attrs["lcv"] == Var("i")
        assert attrs["init"] == Const(2)
        assert attrs["final"] == Var("n")
        assert attrs["step"] == Const(3)
        assert attrs["head"] == head.qid

    def test_trip_count_constant(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(10))
        assert trip_count(head) == 10

    def test_trip_count_with_step(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(10),
                    step=Const(3))
        assert trip_count(head) == 4

    def test_trip_count_negative_step(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(5), b=Const(1),
                    step=Const(-1))
        assert trip_count(head) == 5

    def test_trip_count_empty_loop(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(5), b=Const(1))
        assert trip_count(head) == 0

    def test_trip_count_symbolic_returns_default(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Var("n"))
        assert trip_count(head) is None
        assert trip_count(head, default=10) == 10
