"""Unit tests for program pretty-printing."""

from repro.ir.builder import IRBuilder
from repro.ir.printer import format_program, format_side_by_side


def test_indentation_follows_structure():
    b = IRBuilder()
    with b.loop("i", 1, 3):
        with b.if_("x", ">", 0):
            b.assign("y", 1)
    text = format_program(b.build(), show_qids=False)
    lines = text.splitlines()
    assert lines[0] == "do i = 1, 3"
    assert lines[1] == "    if x > 0"
    assert lines[2] == "        y := 1"
    assert lines[3] == "    endif"
    assert lines[4] == "enddo"


def test_qids_shown_by_default():
    b = IRBuilder()
    b.assign("x", 1)
    assert format_program(b.build()).startswith("   0:")


def test_else_dedents_one_level():
    b = IRBuilder()
    with b.if_else("x", ">", 0) as (_g, orelse):
        b.assign("y", 1)
        orelse.begin()
        b.assign("y", 2)
    lines = format_program(b.build(), show_qids=False).splitlines()
    assert lines[2] == "else"


def test_side_by_side_contains_both_programs():
    left = IRBuilder()
    left.assign("x", 1)
    right = IRBuilder()
    right.assign("y", 2)
    text = format_side_by_side(left.build(), right.build())
    assert "BEFORE" in text and "AFTER" in text
    assert "x := 1" in text and "y := 2" in text


def test_side_by_side_pads_unequal_lengths():
    left = IRBuilder()
    left.assign("x", 1)
    left.assign("x", 2)
    right = IRBuilder()
    right.assign("y", 2)
    text = format_side_by_side(left.build(), right.build())
    assert len(text.splitlines()) == 4  # header + rule + two rows
