"""Unit tests for the Program container's identity-stable mutations."""

import pytest

from repro.ir.program import IRError, Program
from repro.ir.quad import Opcode, Quad, assign
from repro.ir.types import Const, Var


def make_program(count=4):
    program = Program()
    for index in range(count):
        program.append(assign(Var(f"x{index}"), Const(index)))
    return program


class TestBasics:
    def test_append_assigns_fresh_qids(self):
        program = make_program(3)
        assert program.qids() == [0, 1, 2]

    def test_len_iter_getitem(self):
        program = make_program(3)
        assert len(program) == 3
        assert [q.qid for q in program] == [0, 1, 2]
        assert program[1].qid == 1

    def test_quad_lookup_by_qid(self):
        program = make_program(3)
        assert program.quad(2).result == Var("x2")

    def test_quad_lookup_unknown_raises(self):
        with pytest.raises(IRError):
            make_program(1).quad(99)

    def test_position_tracks_index(self):
        program = make_program(3)
        assert program.position(2) == 2

    def test_contains(self):
        program = make_program(2)
        assert program.contains(1)
        assert not program.contains(5)

    def test_next_prev(self):
        program = make_program(3)
        assert program.next_qid_of(0) == 1
        assert program.prev_qid_of(1) == 0
        assert program.next_qid_of(2) is None
        assert program.prev_qid_of(0) is None


class TestMutation:
    def test_insert_after(self):
        program = make_program(3)
        fresh = program.insert_after(0, assign(Var("y"), Const(9)))
        assert program.qids() == [0, fresh.qid, 1, 2]

    def test_insert_before(self):
        program = make_program(2)
        fresh = program.insert_before(0, assign(Var("y"), Const(9)))
        assert program.qids()[0] == fresh.qid

    def test_insert_at_bounds_checked(self):
        with pytest.raises(IRError):
            make_program(1).insert_at(5, assign(Var("y"), Const(1)))

    def test_remove_keeps_other_qids(self):
        program = make_program(3)
        program.remove(1)
        assert program.qids() == [0, 2]
        assert program.position(2) == 1

    def test_removed_qids_never_reused(self):
        program = make_program(3)
        program.remove(2)
        fresh = program.append(assign(Var("z"), Const(0)))
        assert fresh.qid == 3

    def test_move_after_preserves_identity(self):
        program = make_program(3)
        program.move_after(0, 2)
        assert program.qids() == [1, 2, 0]
        assert program.quad(0).result == Var("x0")

    def test_move_after_self_rejected(self):
        with pytest.raises(IRError):
            make_program(2).move_after(1, 1)

    def test_move_to_front(self):
        program = make_program(3)
        program.move_to_front(2)
        assert program.qids() == [2, 0, 1]

    def test_replace_keeps_qid(self):
        program = make_program(2)
        program.replace(1, assign(Var("q"), Const(5)))
        assert program.quad(1).result == Var("q")
        assert program.qids() == [0, 1]

    def test_duplicate_qid_rejected(self):
        program = make_program(1)
        stray = assign(Var("y"), Const(1))
        stray.qid = 0
        with pytest.raises(IRError):
            program.append(stray)

    def test_version_bumps_on_every_mutation(self):
        program = make_program(2)
        version = program.version
        program.insert_after(0, assign(Var("y"), Const(1)))
        assert program.version > version
        version = program.version
        program.remove(0)
        assert program.version > version
        version = program.version
        program.touch()
        assert program.version > version


class TestCloneAndQueries:
    def test_clone_preserves_qids_and_content(self):
        program = make_program(3)
        duplicate = program.clone()
        assert duplicate.qids() == program.qids()
        assert str(duplicate.quad(1)) == str(program.quad(1))

    def test_clone_is_independent(self):
        program = make_program(2)
        duplicate = program.clone()
        duplicate.remove(0)
        assert program.contains(0)

    def test_clone_continues_qid_sequence(self):
        program = make_program(2)
        duplicate = program.clone()
        fresh = duplicate.append(assign(Var("z"), Const(1)))
        assert fresh.qid == 2

    def test_scalar_names(self):
        program = Program()
        program.append(assign(Var("x"), Var("y")))
        assert program.scalar_names() == frozenset({"x", "y"})

    def test_array_names(self):
        from repro.ir.types import Affine, ArrayRef

        program = Program()
        program.append(
            assign(ArrayRef("a", (Affine.var("i"),)),
                   ArrayRef("b", (Affine.var("i"),)))
        )
        assert program.array_names() == frozenset({"a", "b"})


class TestStructureValidation:
    def test_unmatched_enddo(self):
        program = Program()
        program.append(Quad(Opcode.ENDDO))
        with pytest.raises(IRError):
            program.check_structure()

    def test_unterminated_loop(self):
        program = Program()
        program.append(Quad(Opcode.DO, result=Var("i"), a=Const(1),
                            b=Const(2)))
        with pytest.raises(IRError):
            program.check_structure()

    def test_else_outside_if(self):
        program = Program()
        program.append(Quad(Opcode.ELSE))
        with pytest.raises(IRError):
            program.check_structure()

    def test_mismatched_endif_inside_loop(self):
        program = Program()
        program.append(Quad(Opcode.DO, result=Var("i"), a=Const(1),
                            b=Const(2)))
        program.append(Quad(Opcode.ENDIF))
        with pytest.raises(IRError):
            program.check_structure()

    def test_valid_nesting_passes(self):
        program = Program()
        program.append(Quad(Opcode.DO, result=Var("i"), a=Const(1),
                            b=Const(2)))
        program.append(Quad(Opcode.IF, a=Var("x"), b=Const(0), relop="<"))
        program.append(Quad(Opcode.ELSE))
        program.append(Quad(Opcode.ENDIF))
        program.append(Quad(Opcode.ENDDO))
        program.check_structure()
