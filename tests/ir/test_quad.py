"""Unit tests for quad statements."""

import pytest

from repro.ir.quad import (
    BINARY_OPS,
    COMPUTE_OPS,
    Opcode,
    Quad,
    UNARY_OPS,
    assign,
    binop,
)
from repro.ir.types import Affine, ArrayRef, Const, Var


def _arr(name, *subs):
    return ArrayRef(name, tuple(Affine.var(s) if isinstance(s, str)
                                else Affine.constant(s) for s in subs))


class TestConstruction:
    def test_assign_helper(self):
        quad = assign(Var("x"), Const(1))
        assert quad.opcode is Opcode.ASSIGN
        assert quad.result == Var("x")
        assert quad.a == Const(1)

    def test_binop_helper(self):
        quad = binop(Var("x"), Var("y"), Opcode.ADD, Const(2))
        assert quad.opcode is Opcode.ADD
        assert quad.b == Const(2)

    def test_binop_rejects_non_binary(self):
        with pytest.raises(ValueError):
            binop(Var("x"), Var("y"), Opcode.ASSIGN, Const(2))

    def test_if_requires_relop(self):
        with pytest.raises(ValueError):
            Quad(Opcode.IF, a=Var("x"), b=Const(0))

    def test_loop_head_requires_var_lcv(self):
        with pytest.raises(ValueError):
            Quad(Opcode.DO, result=Const(1), a=Const(1), b=Const(2))

    def test_loop_head_defaults_step_to_one(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(5))
        assert head.step == Const(1)


class TestClassification:
    def test_compute_classification(self):
        assert assign(Var("x"), Const(1)).is_assignment()
        assert binop(Var("x"), Var("y"), Opcode.MUL, Var("z")).is_assignment()
        assert not Quad(Opcode.ENDDO).is_assignment()

    def test_loop_head_classification(self):
        head = Quad(Opcode.DOALL, result=Var("i"), a=Const(1), b=Const(2))
        assert head.is_loop_head()
        assert head.is_structural()

    def test_compute_ops_cover_binary_and_unary(self):
        assert BINARY_OPS <= COMPUTE_OPS
        assert UNARY_OPS <= COMPUTE_OPS


class TestDefsAndUses:
    def test_scalar_definition(self):
        assert assign(Var("x"), Const(1)).defined_scalar() == "x"
        assert assign(_arr("a", "i"), Const(1)).defined_scalar() is None

    def test_array_definition(self):
        quad = assign(_arr("a", "i"), Const(1))
        assert quad.defined_array().name == "a"

    def test_loop_head_defines_lcv(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Var("n"))
        assert head.defined_scalar() == "i"

    def test_read_defines_its_operand(self):
        quad = Quad(Opcode.READ, a=Var("x"))
        assert quad.defined_scalar() == "x"

    def test_write_defines_nothing(self):
        assert Quad(Opcode.WRITE, a=Var("x")).defined_operand() is None

    def test_use_positions_of_binop(self):
        quad = binop(Var("x"), Var("y"), Opcode.ADD, Const(2))
        assert [(p, o) for p, o in quad.use_positions()] == [
            ("a", Var("y")), ("b", Const(2)),
        ]

    def test_array_result_subscripts_are_uses(self):
        quad = assign(_arr("a", "i"), Const(1))
        positions = dict(quad.use_positions())
        assert "result" in positions
        assert quad.used_scalar_names() == frozenset({"i"})

    def test_loop_head_uses_bounds_and_step(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Var("lo"), b=Var("hi"),
                    step=Var("st"))
        assert head.used_scalar_names() == frozenset({"lo", "hi", "st"})

    def test_used_array_refs_excludes_result(self):
        quad = binop(_arr("a", "i"), _arr("b", "i"), Opcode.ADD, Const(1))
        refs = quad.used_array_refs()
        assert [ref.name for _pos, ref in refs] == ["b"]

    def test_write_uses_operand(self):
        quad = Quad(Opcode.WRITE, a=_arr("a", "i"))
        assert quad.used_scalar_names() == frozenset({"i"})
        assert [r.name for _p, r in quad.used_array_refs()] == ["a"]


class TestOperandAccess:
    def test_operand_at_positions(self):
        quad = binop(Var("x"), Var("y"), Opcode.SUB, Const(2))
        assert quad.operand_at("result") == Var("x")
        assert quad.operand_at("a") == Var("y")
        assert quad.operand_at("b") == Const(2)

    def test_operand_at_unknown_position(self):
        with pytest.raises(KeyError):
            assign(Var("x"), Const(1)).operand_at("q")

    def test_set_operand(self):
        quad = assign(Var("x"), Var("y"))
        quad.set_operand("a", Const(7))
        assert quad.a == Const(7)

    def test_set_operand_step(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(9))
        head.set_operand("step", Const(2))
        assert head.step == Const(2)


class TestCopyAndStr:
    def test_copy_clears_qid(self):
        quad = assign(Var("x"), Const(1))
        quad.qid = 42
        assert quad.copy().qid == -1

    def test_str_assign(self):
        assert str(assign(Var("x"), Const(1))) == "x := 1"

    def test_str_binop(self):
        quad = binop(Var("x"), Var("y"), Opcode.MUL, Var("z"))
        assert str(quad) == "x := y * z"

    def test_str_loop_with_step(self):
        head = Quad(Opcode.DO, result=Var("i"), a=Const(2), b=Const(8),
                    step=Const(2))
        assert str(head) == "do i = 2, 8, 2"

    def test_str_if(self):
        quad = Quad(Opcode.IF, a=Var("x"), b=Const(0), relop=">=")
        assert str(quad) == "if x >= 0"

    def test_str_unary(self):
        quad = Quad(Opcode.SQRT, result=Var("x"), a=Var("y"))
        assert str(quad) == "x := sqrt(y)"
