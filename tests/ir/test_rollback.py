"""Program change-log undo: pin/rollback/restore/transaction."""

import pytest

from repro.analysis.manager import AnalysisManager
from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.ir.program import IRError, Program, RollbackUnavailable
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Var

SOURCE = """
program t
  integer i, n
  real a(10), x, y
  n = 5
  x = 1.0
  do i = 1, n
    a(i) = x * 2.0
  end do
  y = x + 3.0
  write y
end
"""


def _program() -> Program:
    return parse_program(SOURCE)


def _unparse(program: Program) -> str:
    return unparse_program(program, name=program.name)


class TestRollbackTo:
    def test_rollback_undoes_remove(self):
        program = _program()
        baseline = _unparse(program)
        mark = program.pin()
        target = next(q for q in program.quads if not q.is_structural())
        program.remove(target.qid)
        assert _unparse(program) != baseline
        program.rollback_to(mark)
        program.unpin(mark)
        assert _unparse(program) == baseline

    def test_rollback_undoes_mixed_sequence(self):
        program = _program()
        baseline = _unparse(program)
        mark = program.pin()
        statements = [q for q in program.quads if not q.is_structural()]
        program.remove(statements[0].qid)
        program.append(Quad(Opcode.WRITE, a=Var("x")))
        before = program.preimage(statements[1].qid)
        statements[1].result = Var("y")
        program.touch(statements[1].qid, before=before)
        program.move_to_front(statements[2].qid)
        program.rollback_to(mark)
        program.unpin(mark)
        assert _unparse(program) == baseline

    def test_rollback_is_versioned_forward(self):
        # undos go through the normal mutation API: the version never
        # reuses a number, so analysis caches cannot alias states
        program = _program()
        mark = program.pin()
        version_before = program.version
        target = next(q for q in program.quads if not q.is_structural())
        program.remove(target.qid)
        program.rollback_to(mark)
        program.unpin(mark)
        assert program.version > version_before

    def test_rollback_without_changes_is_noop(self):
        program = _program()
        mark = program.pin()
        assert program.rollback_to(mark) == 0
        program.unpin(mark)

    def test_opaque_touch_defeats_log_rollback(self):
        program = _program()
        mark = program.pin()
        target = next(q for q in program.quads if not q.is_structural())
        target.result = Var("y")
        program.touch()  # untagged: no pre-image recorded
        with pytest.raises(RollbackUnavailable):
            program.rollback_to(mark)
        program.unpin(mark)

    def test_trimmed_log_rollback_unavailable(self):
        program = _program()
        stale = program.version
        # plenty of unpinned mutations so the log trims past `stale`
        for _ in range(2500):
            quad = program.append(Quad(Opcode.WRITE, a=Var("x")))
            program.remove(quad.qid)
        with pytest.raises(RollbackUnavailable):
            program.rollback_to(stale)

    def test_pin_blocks_log_trimming(self):
        program = _program()
        baseline = _unparse(program)
        mark = program.pin()
        for _ in range(2500):
            quad = program.append(Quad(Opcode.WRITE, a=Var("x")))
            program.remove(quad.qid)
        program.rollback_to(mark)
        program.unpin(mark)
        assert _unparse(program) == baseline


class TestRestoreFrom:
    def test_restore_is_in_place_and_exact(self):
        program = _program()
        snapshot = program.clone()
        baseline = _unparse(program)
        for quad in list(program.quads):
            if not quad.is_structural():
                program.remove(quad.qid)
        program.restore_from(snapshot)
        assert _unparse(program) == baseline
        # identity preserved: callers holding the object see the restore
        assert program.quads  # not a fresh empty object

    def test_restore_moves_version_forward(self):
        program = _program()
        snapshot = program.clone()
        version = program.version
        target = next(q for q in program.quads if not q.is_structural())
        program.remove(target.qid)
        program.restore_from(snapshot)
        assert program.version > version

    def test_fresh_qids_after_restore_do_not_collide(self):
        program = _program()
        snapshot = program.clone()
        program.restore_from(snapshot)
        new = program.append(Quad(Opcode.WRITE, a=Var("x")))
        assert new.qid not in [q.qid for q in program.quads[:-1]]


class TestTransactionContextManager:
    def test_commit_keeps_changes(self):
        program = _program()
        with program.transaction():
            target = next(
                q for q in program.quads if not q.is_structural()
            )
            program.remove(target.qid)
        assert target.qid not in [q.qid for q in program.quads]

    def test_exception_rolls_back(self):
        program = _program()
        baseline = _unparse(program)
        with pytest.raises(RuntimeError):
            with program.transaction():
                target = next(
                    q for q in program.quads if not q.is_structural()
                )
                program.remove(target.qid)
                raise RuntimeError("boom")
        assert _unparse(program) == baseline


class TestManagerCoherence:
    def test_incremental_graph_follows_rollback(self):
        # full_check asserts splice == rebuild at every refresh
        program = _program()
        manager = AnalysisManager(program, full_check=True)
        manager.graph()
        mark = program.pin()
        statements = [q for q in program.quads if not q.is_structural()]
        program.remove(statements[0].qid)
        manager.graph()
        program.rollback_to(mark)
        program.unpin(mark)
        manager.graph()  # would raise if the splice diverged

    def test_preimage_requires_known_qid(self):
        program = _program()
        with pytest.raises(IRError):
            program.preimage(10_000)
