"""Unit tests for operands and affine subscript expressions."""

import pytest

from repro.ir.types import (
    Affine,
    ArrayRef,
    Const,
    Var,
    is_array,
    is_const,
    is_var,
    operand_kind,
    used_scalars,
)


class TestAffine:
    def test_of_builds_sorted_terms(self):
        expr = Affine.of(3, j=2, i=1)
        assert expr.terms == (("i", 1), ("j", 2))
        assert expr.const == 3

    def test_of_drops_zero_coefficients(self):
        assert Affine.of(1, i=0).terms == ()

    def test_var_and_constant_constructors(self):
        assert Affine.var("i") == Affine.of(0, i=1)
        assert Affine.constant(7) == Affine.of(7)

    def test_coefficient_lookup(self):
        expr = Affine.of(0, i=2, j=-1)
        assert expr.coefficient("i") == 2
        assert expr.coefficient("j") == -1
        assert expr.coefficient("k") == 0

    def test_variables_property(self):
        assert Affine.of(5, i=1, k=3).variables == ("i", "k")

    def test_is_constant(self):
        assert Affine.constant(4).is_constant()
        assert not Affine.var("i").is_constant()

    def test_addition_merges_terms(self):
        total = Affine.of(1, i=2) + Affine.of(3, i=-2, j=1)
        assert total == Affine.of(4, j=1)

    def test_addition_with_int(self):
        assert Affine.var("i") + 5 == Affine.of(5, i=1)

    def test_negation(self):
        assert -Affine.of(2, i=3) == Affine.of(-2, i=-3)

    def test_subtraction(self):
        assert Affine.var("i") - Affine.var("i") == Affine.constant(0)
        assert Affine.var("i") - 1 == Affine.of(-1, i=1)

    def test_scale(self):
        assert Affine.of(1, i=2).scale(3) == Affine.of(3, i=6)
        assert Affine.of(9, i=2).scale(0) == Affine.constant(0)

    def test_substitute_replaces_variable(self):
        expr = Affine.of(1, i=2)
        replaced = expr.substitute("i", Affine.of(3, j=1))
        assert replaced == Affine.of(7, j=2)

    def test_substitute_missing_variable_is_noop(self):
        expr = Affine.of(1, i=2)
        assert expr.substitute("k", Affine.constant(9)) is expr

    def test_str_forms(self):
        assert str(Affine.var("i")) == "i"
        assert str(Affine.of(1, i=1)) == "i + 1"
        assert str(Affine.of(-2, i=1)) == "i - 2"
        assert str(Affine.of(0, i=-1)) == "-i"
        assert str(Affine.constant(0)) == "0"

    def test_equality_and_hash(self):
        assert Affine.of(1, i=2) == Affine.of(1, i=2)
        assert hash(Affine.of(1, i=2)) == hash(Affine.of(1, i=2))


class TestOperands:
    def test_kind_classification(self):
        assert operand_kind(Const(1)) == "const"
        assert operand_kind(Var("x")) == "var"
        assert operand_kind(ArrayRef("a", (Affine.var("i"),))) == "array"
        assert operand_kind(None) == "none"

    def test_kind_rejects_non_operand(self):
        with pytest.raises(TypeError):
            operand_kind("hello")

    def test_predicates(self):
        assert is_const(Const(2.5))
        assert is_var(Var("y"))
        assert is_array(ArrayRef("a", (Affine.constant(1),)))
        assert not is_const(Var("x"))

    def test_used_scalars_of_var_and_const(self):
        assert used_scalars(Var("x")) == frozenset({"x"})
        assert used_scalars(Const(3)) == frozenset()
        assert used_scalars(None) == frozenset()

    def test_used_scalars_of_array_includes_subscript_vars(self):
        ref = ArrayRef("a", (Affine.of(1, i=1, j=2), Var("k")))
        assert used_scalars(ref) == frozenset({"i", "j", "k"})

    def test_array_str(self):
        ref = ArrayRef("a", (Affine.var("i"), Affine.of(-1, j=1)))
        assert str(ref) == "a(i, j - 1)"

    def test_operands_hashable(self):
        assert len({Var("x"), Var("x"), Const(1), Const(1)}) == 2
