"""Unit tests for the program validator."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad
from repro.ir.types import ArrayRef, Const, Var
from repro.ir.validate import ValidationError, validate_program


def test_well_formed_program_passes():
    b = IRBuilder()
    b.assign("n", 4)
    with b.loop("i", 1, "n"):
        b.binary(b.arr("a", "i"), b.arr("a", "i"), "+", 1)
    b.write(b.arr("a", 2))
    report = validate_program(b.build())
    assert report.ok
    assert "well formed" in str(report)


def test_workloads_validate(suite):
    for item in suite:
        validate_program(item.load())


def test_broken_nesting_reported():
    program = Program()
    program.append(Quad(Opcode.ENDDO))
    report = validate_program(program, strict=False)
    assert not report.ok


def test_strict_mode_raises():
    program = Program()
    program.append(Quad(Opcode.ENDDO))
    with pytest.raises(ValidationError):
        validate_program(program)


def test_assign_with_second_operand_rejected():
    program = Program()
    program.append(
        Quad(Opcode.ASSIGN, result=Var("x"), a=Const(1), b=Const(2))
    )
    report = validate_program(program, strict=False)
    assert any("second operand" in p for p in report.problems)


def test_binop_missing_operand_rejected():
    program = Program()
    program.append(Quad(Opcode.ADD, result=Var("x"), a=Const(1)))
    report = validate_program(program, strict=False)
    assert any("second operand" in p for p in report.problems)


def test_compute_into_const_rejected():
    program = Program()
    program.append(Quad(Opcode.ADD, result=Const(5), a=Const(1), b=Const(2)))
    report = validate_program(program, strict=False)
    assert any("assignable result" in p for p in report.problems)


def test_zero_step_rejected():
    program = Program()
    program.append(
        Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(3),
             step=Const(0))
    )
    program.append(Quad(Opcode.ENDDO))
    report = validate_program(program, strict=False)
    assert any("nonzero" in p for p in report.problems)


def test_lcv_assignment_in_body_rejected():
    program = Program()
    program.append(Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(3)))
    program.append(Quad(Opcode.ASSIGN, result=Var("i"), a=Const(9)))
    program.append(Quad(Opcode.ENDDO))
    report = validate_program(program, strict=False)
    assert any("control variable" in p for p in report.problems)


def test_read_into_lcv_rejected():
    program = Program()
    program.append(Quad(Opcode.DO, result=Var("i"), a=Const(1), b=Const(3)))
    program.append(Quad(Opcode.READ, a=Var("i")))
    program.append(Quad(Opcode.ENDDO))
    report = validate_program(program, strict=False)
    assert any("control variable" in p for p in report.problems)


def test_empty_subscripts_rejected():
    program = Program()
    program.append(
        Quad(Opcode.ASSIGN, result=ArrayRef("a", ()), a=Const(1))
    )
    report = validate_program(program, strict=False)
    assert any("subscripts" in p for p in report.problems)


def test_transformed_workloads_stay_valid(optimizers, suite_by_name):
    from repro.genesis.driver import DriverOptions, run_optimizer

    for workload_name in ("newton", "poly", "ordering"):
        program = suite_by_name[workload_name].load()
        for name in ("CTP", "CFO", "LUR", "FUS", "DCE"):
            run_optimizer(optimizers[name], program,
                          DriverOptions(apply_all=True))
            validate_program(program)
