"""Unit tests for machine models and time estimation."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.quad import Opcode
from repro.machine.estimate import (
    estimate_benefit,
    estimate_time,
    restrict_parallel,
)
from repro.machine.models import (
    ALL_MODELS,
    MULTIPROCESSOR,
    MachineModel,
    SCALAR,
    VECTOR,
)


def loop_program(parallel=False, trip=8):
    b = IRBuilder()
    with b.loop("i", 1, trip, parallel=parallel):
        b.binary(b.arr("a", "i"), b.arr("a", "i"), "+", 1)
    return b.build()


class TestModels:
    def test_three_models_exported(self):
        assert [m.name for m in ALL_MODELS] == [
            "scalar", "vector", "multiprocessor",
        ]

    def test_doall_factor_capped_by_trip(self):
        assert MULTIPROCESSOR.doall_factor(3) == 3
        assert MULTIPROCESSOR.doall_factor(100) == 8
        assert VECTOR.doall_factor(100) == 64

    def test_scalar_has_no_parallelism(self):
        assert SCALAR.doall_factor(100) == 1

    def test_cost_of_defaults_to_one(self):
        model = MachineModel(name="m", cycles={})
        assert model.cost_of(Opcode.ADD) == 1.0


class TestEstimation:
    def test_sequential_loop_scales_with_trip(self):
        short = estimate_time(loop_program(trip=4), SCALAR).cycles
        long = estimate_time(loop_program(trip=8), SCALAR).cycles
        assert long > short

    def test_symbolic_bounds_use_default_trip(self):
        b = IRBuilder()
        with b.loop("i", 1, "n"):
            b.assign("x", 1)
        estimate = estimate_time(b.build(), SCALAR)
        assert estimate.cycles > 0

    def test_doall_faster_than_do_on_parallel_machines(self):
        # large enough that the fork/join startup amortizes
        sequential = estimate_time(loop_program(False, trip=200),
                                   MULTIPROCESSOR)
        parallel = estimate_time(loop_program(True, trip=200),
                                 MULTIPROCESSOR)
        assert parallel.cycles < sequential.cycles

    def test_doall_startup_can_dominate_small_loops(self):
        # granularity matters: an 8-trip DOALL loses to sequential
        sequential = estimate_time(loop_program(False, trip=8),
                                   MULTIPROCESSOR)
        parallel = estimate_time(loop_program(True, trip=8),
                                 MULTIPROCESSOR)
        assert parallel.cycles > sequential.cycles

    def test_doall_ignored_on_scalar_machine(self):
        sequential = estimate_time(loop_program(False), SCALAR).cycles
        parallel = estimate_time(loop_program(True), SCALAR).cycles
        assert parallel == sequential

    def test_parallel_speedup_reported(self):
        estimate = estimate_time(loop_program(True), VECTOR)
        assert estimate.parallel_speedup > 1

    def test_if_charges_worst_branch(self):
        b = IRBuilder()
        with b.if_else("x", ">", 0) as (_g, orelse):
            b.binary("y", "y", "**", 2)  # expensive
            orelse.begin()
            b.assign("y", 1)  # cheap
        with_else = estimate_time(b.build(), SCALAR).cycles

        b2 = IRBuilder()
        with b2.if_("x", ">", 0):
            b2.binary("y", "y", "**", 2)
        then_only = estimate_time(b2.build(), SCALAR).cycles
        assert with_else == pytest.approx(then_only)

    def test_benefit_of_deleting_code(self):
        b1 = IRBuilder()
        b1.binary("x", "y", "**", 2)
        b1.write("x")
        b2 = IRBuilder()
        b2.write("x")
        assert estimate_benefit(b1.build(), b2.build(), SCALAR) > 0


class TestRestrictParallel:
    def nested_doall(self):
        b = IRBuilder()
        with b.loop("i", 1, 4, parallel=True):
            with b.loop("j", 1, 4, parallel=True):
                b.assign("x", 1)
        return b.build()

    def test_outermost_policy_demotes_inner(self):
        restricted = restrict_parallel(self.nested_doall(), "outermost")
        opcodes = [q.opcode for q in restricted
                   if q.opcode in (Opcode.DO, Opcode.DOALL)]
        assert opcodes == [Opcode.DOALL, Opcode.DO]

    def test_innermost_policy_demotes_outer(self):
        restricted = restrict_parallel(self.nested_doall(), "innermost")
        opcodes = [q.opcode for q in restricted
                   if q.opcode in (Opcode.DO, Opcode.DOALL)]
        assert opcodes == [Opcode.DO, Opcode.DOALL]

    def test_original_untouched(self):
        program = self.nested_doall()
        restrict_parallel(program, "outermost")
        opcodes = [q.opcode for q in program
                   if q.opcode in (Opcode.DO, Opcode.DOALL)]
        assert opcodes == [Opcode.DOALL, Opcode.DOALL]

    def test_sequential_loops_untouched(self):
        b = IRBuilder()
        with b.loop("i", 1, 4):
            b.assign("x", 1)
        restricted = restrict_parallel(b.build(), "outermost")
        assert restricted[0].opcode is Opcode.DO

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            restrict_parallel(self.nested_doall(), "sideways")

    def test_disjoint_doalls_both_kept(self):
        b = IRBuilder()
        with b.loop("i", 1, 4, parallel=True):
            b.assign("x", 1)
        with b.loop("j", 1, 4, parallel=True):
            b.assign("y", 1)
        for policy in ("outermost", "innermost"):
            restricted = restrict_parallel(b.build(), policy)
            doalls = [q for q in restricted if q.opcode is Opcode.DOALL]
            assert len(doalls) == 2
