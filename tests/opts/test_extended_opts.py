"""Behavioral tests for the extension catalog: CSE, STR, ALG, RVS, PEL,
FIS — the specifications that take the count to the paper's
"approximately twenty"."""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.ir.interp import same_behaviour
from repro.ir.printer import format_program
from repro.ir.quad import Opcode
from repro.opts.catalog import build_optimizer
from repro.opts.extended import EXTENDED_SPECS


@pytest.fixture(scope="module")
def extended():
    return {name: build_optimizer(name) for name in EXTENDED_SPECS}


def optimize(extended, name, source, apply_all=True, point=None):
    program = parse_program(source)
    original = program.clone()
    if point is not None:
        apply_at_point(extended[name], program, point)
    else:
        run_optimizer(extended[name], program,
                      DriverOptions(apply_all=apply_all))
    assert same_behaviour(original, program), format_program(program)
    return program


def points(extended, name, source):
    return find_application_points(extended[name], parse_program(source))


def test_all_six_generate(extended):
    assert sorted(extended) == ["ALG", "CSE", "FIS", "PEL", "RVS", "STR"]


class TestCSE:
    def test_reuses_common_expression(self, extended):
        program = optimize(extended, "CSE", """
            program t
              real x, y, a, b
              read x
              read y
              a = x * y
              b = x * y
              write a
              write b
            end
        """)
        assert "b := a" in format_program(program)

    def test_refuses_when_operand_changes(self, extended):
        assert points(extended, "CSE", """
            program t
              real x, y, a, b
              read x
              read y
              a = x * y
              x = 9.0
              b = x * y
              write a
              write b
            end
        """) == []

    def test_refuses_self_updating_source(self, extended):
        # z := z - x changes its own operand; the value is not reusable
        assert points(extended, "CSE", """
            program t
              real x, z, w
              read x
              read z
              z = z - x
              w = z - x
              write w
            end
        """) == []

    def test_refuses_conditional_first_occurrence(self, extended):
        assert points(extended, "CSE", """
            program t
              real x, y, a, b
              read x
              read y
              if (x > 0.0) then
                a = x * y
              end if
              b = x * y
              write b
            end
        """) == []

    def test_refuses_result_overwritten_between(self, extended):
        assert points(extended, "CSE", """
            program t
              real x, y, a, b
              read x
              read y
              a = x * y
              a = 0.0
              b = x * y
              write a
              write b
            end
        """) == []

    def test_same_loop_occurrences_allowed(self, extended):
        program = optimize(extended, "CSE", """
            program t
              integer i
              real x, y, a, b
              read x
              read y
              do i = 1, 3
                a = x + y
                b = x + y
                write b
              end do
              write a
            end
        """)
        assert "b := a" in format_program(program)

    def test_refuses_reuse_outside_the_loop(self, extended):
        # the loop may run zero times under symbolic bounds... here the
        # guard is the loop-containment condition itself
        assert points(extended, "CSE", """
            program t
              integer i, n
              real x, y, a, b
              read x
              read y
              read n
              do i = 1, n
                a = x + y
                write a
              end do
              b = x + y
              write b
            end
        """) == []


class TestSTRAndALG:
    def test_square_becomes_multiply(self, extended):
        program = optimize(extended, "STR", """
            program t
              real x, y
              read y
              x = y ** 2
              write x
            end
        """)
        assert "x := y * y" in format_program(program)

    def test_other_powers_untouched(self, extended):
        assert points(extended, "STR", """
            program t
              real x, y
              read y
              x = y ** 3
              write x
            end
        """) == []

    @pytest.mark.parametrize("expression", [
        "y * 1", "y + 0", "y - 0", "y / 1", "y ** 1",
    ])
    def test_identities_simplify(self, extended, expression):
        program = optimize(extended, "ALG", f"""
            program t
              real x, y
              read y
              x = {expression}
              write x
            end
        """)
        assert "x := y" in format_program(program)

    def test_non_identities_untouched(self, extended):
        assert points(extended, "ALG", """
            program t
              real x, y
              read y
              x = y * 2
              write x
            end
        """) == []


class TestRVS:
    def test_reverses_independent_loop(self, extended):
        program = optimize(extended, "RVS", """
            program t
              integer i
              real a(10), b(10)
              do i = 1, 5
                a(i) = b(i) * 2.0
              end do
              write a(3)
            end
        """, apply_all=False)
        assert "do i = 5, 1, -1" in format_program(program)

    def test_refuses_recurrence(self, extended):
        assert points(extended, "RVS", """
            program t
              integer i
              real a(10)
              do i = 2, 5
                a(i) = a(i-1) * 2.0
              end do
              write a(3)
            end
        """) == []

    def test_refuses_live_out_scalar(self, extended):
        # the last iteration's value of w differs under reversal
        assert points(extended, "RVS", """
            program t
              integer i
              real w, a(10)
              do i = 1, 5
                w = a(i) + 2.0
              end do
              write w
            end
        """) == []

    def test_refuses_io(self, extended):
        assert points(extended, "RVS", """
            program t
              integer i
              real a(10)
              do i = 1, 5
                write a(i)
              end do
              write a(1)
            end
        """) == []

    def test_refuses_lcv_read_after(self, extended):
        assert points(extended, "RVS", """
            program t
              integer i
              real a(10)
              do i = 1, 5
                a(i) = 1.0
              end do
              write i
            end
        """) == []


class TestPEL:
    def test_peels_first_iteration(self, extended):
        program = optimize(extended, "PEL", """
            program t
              integer i
              real a(10)
              a(1) = 0.0
              do i = 1, 4
                a(i) = i * 2.0
              end do
              write a(2)
            end
        """, apply_all=False)
        text = format_program(program)
        assert "a(1) := 1 * 2.0" in text
        assert "do i = 2, 4" in text

    def test_peeling_with_step(self, extended):
        program = optimize(extended, "PEL", """
            program t
              integer i
              real a(20)
              a(1) = 0.0
              do i = 2, 10, 3
                a(i) = 1.0
              end do
              write a(5)
            end
        """, apply_all=False)
        text = format_program(program)
        assert "a(2) := 1.0" in text
        assert "do i = 5, 10, 3" in text

    def test_refuses_symbolic_bounds(self, extended):
        assert points(extended, "PEL", """
            program t
              integer i, n
              real a(10)
              read n
              do i = 1, n
                a(i) = 1.0
              end do
              write a(2)
            end
        """) == []


class TestFIS:
    SOURCE = """
        program t
          integer i, n
          real a(10), b(10), c(10)
          n = 5
          do i = 1, n
            a(i) = b(i) + 1.0
            c(i) = a(i) * 2.0
          end do
          write c(3)
        end
    """

    def cut_points(self, extended, source=None):
        return points(extended, "FIS", source or self.SOURCE)

    def test_distributes_at_cut(self, extended):
        # pick the cut whose split statement is the c(i) assignment
        program = parse_program(self.SOURCE)
        original = program.clone()
        cut = next(
            index
            for index, point in enumerate(self.cut_points(extended))
            if "c" in str(program.quad(point["Sp"]))
        )
        apply_at_point(extended["FIS"], program, cut)
        assert same_behaviour(original, program)
        heads = [q for q in program if q.opcode is Opcode.DO]
        assert len(heads) == 2

    def test_refuses_backward_cross_dependence(self, extended):
        # the first part reads what the second wrote one iteration ago:
        # distributing would starve it
        source = """
            program t
              integer i, n
              real a(12), c(12)
              n = 5
              do i = 2, n
                c(i) = a(i-1) * 2.0
                a(i) = i * 1.0
              end do
              write c(3)
            end
        """
        program = parse_program(source)
        cuts = {
            str(program.quad(point["Sp"]))
            for point in self.cut_points(extended, source)
        }
        assert not any(text.startswith("a(") for text in cuts), cuts

    def test_refuses_scalar_across_cut(self, extended):
        source = """
            program t
              integer i, n
              real t, a(10), c(10)
              n = 5
              do i = 1, n
                t = a(i) + 1.0
                c(i) = t * 2.0
              end do
              write c(3)
            end
        """
        program = parse_program(source)
        for point in self.cut_points(extended, source):
            # no legal cut separates the t-producer from its consumer
            assert "c(" not in str(program.quad(point["Sp"]))


class TestExtendedOnWorkloads:
    """The extension catalog stays semantics-preserving on the suite."""

    @pytest.mark.parametrize("name", sorted(EXTENDED_SPECS))
    def test_preserves_workload_output(self, extended, name, suite):
        from repro.ir.interp import run_program

        for item in suite:
            program = item.load()
            reference = run_program(program, inputs=item.inputs).observable()
            run_optimizer(extended[name], program,
                          DriverOptions(apply_all=True,
                                        max_applications=30))
            result = run_program(program, inputs=item.inputs).observable()
            assert result == reference, f"{name} broke {item.name}"
