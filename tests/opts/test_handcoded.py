"""Tests for the hand-coded baselines and their parity with generated
optimizers (the per-program backbone of experiment E1)."""

import pytest

from repro.genesis.driver import find_application_points
from repro.ir.interp import run_program
from repro.opts.handcoded import HANDCODED, handcoded_optimizer
from repro.workloads.suite import full_suite

ALL_NAMES = tuple(sorted(HANDCODED))


def keyed(points):
    return {
        tuple(sorted((k, str(v)) for k, v in point.items()))
        for point in points
    }


def test_registry_covers_all_eleven():
    assert len(HANDCODED) == 11


def test_unknown_baseline_rejected():
    with pytest.raises(KeyError):
        handcoded_optimizer("ZZZ")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_points_match_generated_on_suite(name, optimizers, suite):
    generated = optimizers[name]
    baseline = handcoded_optimizer(name)
    for item in suite:
        program = item.load()
        generated_points = keyed(
            find_application_points(generated, program.clone())
        )
        handcoded_points = keyed(baseline.find_points(program.clone()))
        assert generated_points == handcoded_points, (
            f"{name} on {item.name}"
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_apply_all_preserves_workload_semantics(name, suite):
    baseline = handcoded_optimizer(name)
    for item in suite:
        program = item.load()
        reference = run_program(program, inputs=item.inputs).observable()
        transformed = program.clone()
        baseline.apply_all(transformed)
        result = run_program(transformed, inputs=item.inputs).observable()
        assert result == reference, f"{name} broke {item.name}"


def test_apply_once_returns_none_when_empty():
    from repro.frontend.lower import parse_program

    program = parse_program("program t\n  integer x\n  read x\n  write x\nend")
    assert handcoded_optimizer("CTP").apply_once(program) is None


def test_apply_all_respects_limit(suite_by_name):
    baseline = handcoded_optimizer("CTP")
    program = suite_by_name["fft"].load()
    assert baseline.apply_all(program, limit=2) == 2
