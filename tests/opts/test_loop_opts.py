"""Behavioral tests for the loop optimizations:
ICM, INX, CRC, BMP, PAR, LUR, FUS."""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    apply_at_point,
    find_application_points,
    run_optimizer,
)
from repro.ir.interp import run_program, same_behaviour
from repro.ir.printer import format_program
from repro.ir.quad import Opcode


def optimize(optimizers, name, source, apply_all=False):
    program = parse_program(source)
    original = program.clone()
    run_optimizer(optimizers[name], program,
                  DriverOptions(apply_all=apply_all))
    assert same_behaviour(original, program), format_program(program)
    return program


def points(optimizers, name, source):
    return find_application_points(optimizers[name], parse_program(source))


class TestICM:
    def test_hoists_invariant(self, optimizers):
        program = optimize(optimizers, "ICM", """
            program t
              integer i, n
              real x, y, a(10)
              n = 4
              read y
              do i = 1, n
                x = y * 2.0
                a(i) = a(i) + x
              end do
              write x
            end
        """)
        text = format_program(program)
        hoist_position = text.index("x := y * 2.0")
        loop_position = text.index("do i")
        assert hoist_position < loop_position

    def test_refuses_lcv_dependent(self, optimizers):
        assert points(optimizers, "ICM", """
            program t
              integer i, n
              real x, a(10)
              n = 4
              do i = 1, n
                x = i * 2.0
                a(i) = x
              end do
              write a(2)
            end
        """) == []

    def test_refuses_conditional_statement(self, optimizers):
        assert points(optimizers, "ICM", """
            program t
              integer i, n
              real x, y, a(10)
              n = 4
              read y
              do i = 1, n
                if (a(i) > 0.0) then
                  x = y * 2.0
                end if
                a(i) = a(i) + x
              end do
              write x
            end
        """) == []

    def test_refuses_accumulation(self, optimizers):
        assert points(optimizers, "ICM", """
            program t
              integer i, n
              real s, a(10)
              n = 4
              do i = 1, n
                s = s + a(i)
              end do
              write s
            end
        """) == []


class TestINX:
    NEST = """
        program t
          integer i, j, n
          real a(10,10)
          n = 6
          do i = 1, n
            do j = 1, n
              a(i,j) = a(i,j) + 1.0
            end do
          end do
          write a(2,3)
        end
    """

    def test_interchanges_independent_nest(self, optimizers):
        program = optimize(optimizers, "INX", self.NEST)
        text = format_program(program)
        assert text.index("do j") < text.index("do i")

    def test_refuses_interchange_preventing_dep(self, optimizers):
        assert points(optimizers, "INX", """
            program t
              integer i, j, n
              real a(12,12)
              n = 6
              do i = 2, n
                do j = 1, 5
                  a(i,j) = a(i-1,j+1) * 0.5
                end do
              end do
              write a(3,3)
            end
        """) == []

    def test_allows_forward_carried_dep(self, optimizers):
        # (<,=) stays lexicographically positive after interchange
        source = """
            program t
              integer i, j, n
              real g(10,10)
              n = 6
              do i = 2, n
                do j = 1, n
                  g(i,j) = g(i-1,j) * 0.9
                end do
              end do
              write g(3,3)
            end
        """
        assert len(points(optimizers, "INX", source)) == 1
        optimize(optimizers, "INX", source)

    def test_refuses_loose_nest(self, optimizers):
        assert points(optimizers, "INX", """
            program t
              integer i, j, n
              real a(10,10), x
              n = 6
              do i = 1, n
                x = 0.0
                do j = 1, n
                  a(i,j) = x
                end do
              end do
              write a(2,2)
            end
        """) == []

    def test_refuses_io_in_body(self, optimizers):
        assert points(optimizers, "INX", """
            program t
              integer i, j, n
              real a(10,10)
              n = 6
              do i = 1, n
                do j = 1, n
                  read a(i,j)
                end do
              end do
              write a(1,1)
            end
        """) == []

    def test_refuses_triangular_bounds(self, optimizers):
        # inner bound uses the outer lcv: header not invariant
        assert points(optimizers, "INX", """
            program t
              integer i, j, n
              real a(10,10)
              n = 6
              do i = 1, n
                do j = 1, i
                  a(i,j) = 1.0
                end do
              end do
              write a(2,2)
            end
        """) == []


class TestCRC:
    def test_rotates_triple_nest(self, optimizers):
        program = optimize(optimizers, "CRC", """
            program t
              integer i, j, k, n
              real t3(8,8,8)
              n = 4
              do i = 1, n
                do j = 1, n
                  do k = 1, n
                    t3(i,j,k) = t3(i,j,k) + 1.0
                  end do
                end do
              end do
              write t3(1,2,3)
            end
        """)
        text = format_program(program)
        assert text.index("do k") < text.index("do i") < text.index("do j")

    def test_refuses_backward_at_inner_level(self, optimizers):
        # flow dep (<,=,>): rotating k outward would reverse it
        assert points(optimizers, "CRC", """
            program t
              integer i, j, k, n
              real t3(8,8,8)
              n = 4
              do i = 2, n
                do j = 1, n
                  do k = 1, 3
                    t3(i,j,k) = t3(i-1,j,k+1) + 1.0
                  end do
                end do
              end do
              write t3(2,2,3)
            end
        """) == []

    def test_allows_forward_rotation(self, optimizers):
        # anti dep (=,=,<) rotates to (<,=,=): still forward, legal
        source = """
            program t
              integer i, j, k, n
              real t3(8,8,8)
              n = 4
              do i = 1, n
                do j = 1, n
                  do k = 1, 3
                    t3(i,j,k) = t3(i,j,k+1) + 1.0
                  end do
                end do
              end do
              write t3(1,2,3)
            end
        """
        assert len(points(optimizers, "CRC", source)) == 1
        optimize(optimizers, "CRC", source)


class TestBMP:
    def test_normalizes_lower_bound(self, optimizers):
        program = optimize(optimizers, "BMP", """
            program t
              integer i
              real a(20)
              do i = 3, 7
                a(i) = i * 2.0
              end do
              write a(5)
            end
        """)
        text = format_program(program)
        assert "do i = 1, 5" in text
        assert "i + 2" in text

    def test_skips_already_normalized(self, optimizers):
        assert points(optimizers, "BMP", """
            program t
              integer i
              real a(20)
              do i = 1, 7
                a(i) = 1.0
              end do
              write a(5)
            end
        """) == []

    def test_skips_symbolic_bounds(self, optimizers):
        assert points(optimizers, "BMP", """
            program t
              integer i, n
              real a(20)
              read n
              do i = 2, n
                a(i) = 1.0
              end do
              write a(5)
            end
        """) == []


class TestPAR:
    def test_marks_independent_loop(self, optimizers):
        program = optimize(optimizers, "PAR", """
            program t
              integer i, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                a(i) = b(i) * 2.0
              end do
              write a(3)
            end
        """)
        assert any(q.opcode is Opcode.DOALL for q in program)

    def test_refuses_recurrence(self, optimizers):
        assert points(optimizers, "PAR", """
            program t
              integer i, n
              real a(10)
              n = 6
              do i = 2, n
                a(i) = a(i-1) * 2.0
              end do
              write a(3)
            end
        """) == []

    def test_refuses_accumulator(self, optimizers):
        assert points(optimizers, "PAR", """
            program t
              integer i, n
              real s, a(10)
              n = 6
              do i = 1, n
                s = s + a(i)
              end do
              write s
            end
        """) == []

    def test_refuses_io_loop(self, optimizers):
        assert points(optimizers, "PAR", """
            program t
              integer i, n
              real a(10)
              n = 6
              do i = 1, n
                read a(i)
              end do
              write a(1)
            end
        """) == []


class TestLUR:
    def test_full_unroll(self, optimizers):
        program = optimize(optimizers, "LUR", """
            program t
              integer i
              real a(10)
              do i = 1, 3
                a(i) = i * 2.0
              end do
              write a(2)
            end
        """)
        text = format_program(program)
        assert "do" not in text.replace("do", "do", 1) or True
        assert all(q.opcode is not Opcode.DO for q in program)
        assert "a(1) := 1 * 2.0" in text
        assert "a(3) := 3 * 2.0" in text

    def test_unroll_with_step(self, optimizers):
        program = optimize(optimizers, "LUR", """
            program t
              integer i
              real a(20)
              do i = 2, 8, 3
                a(i) = 1.0
              end do
              write a(5)
            end
        """)
        text = format_program(program)
        assert "a(2) := 1.0" in text
        assert "a(5) := 1.0" in text
        assert "a(8) := 1.0" in text

    def test_refuses_symbolic_bounds(self, optimizers):
        assert points(optimizers, "LUR", """
            program t
              integer i, n
              real a(10)
              read n
              do i = 1, n
                a(i) = 1.0
              end do
              write a(2)
            end
        """) == []

    def test_refuses_large_trip(self, optimizers):
        assert points(optimizers, "LUR", """
            program t
              integer i
              real a(100)
              do i = 1, 50
                a(i) = 1.0
              end do
              write a(2)
            end
        """) == []

    def test_unrolls_nested_body_block(self, optimizers):
        program = optimize(optimizers, "LUR", """
            program t
              integer i, j, n
              real a(10,10)
              read n
              do i = 1, 2
                do j = 1, n
                  a(i,j) = 1.0
                end do
              end do
              write a(1,1)
            end
        """, apply_all=False)
        # the outer loop unrolled; two copies of the inner loop remain
        heads = [q for q in program if q.opcode is Opcode.DO]
        assert len(heads) == 2


class TestFUS:
    FUSABLE = """
        program t
          integer i, n
          real a(10), b(10)
          n = 6
          do i = 1, n
            a(i) = i * 1.0
          end do
          do i = 1, n
            b(i) = a(i) + 1.0
          end do
          write b(3)
        end
    """

    def test_fuses_conformable_loops(self, optimizers):
        program = optimize(optimizers, "FUS", self.FUSABLE)
        heads = [q for q in program if q.opcode is Opcode.DO]
        assert len(heads) == 1

    def test_refuses_different_bounds(self, optimizers):
        assert points(optimizers, "FUS", """
            program t
              integer i, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                a(i) = 1.0
              end do
              do i = 1, 4
                b(i) = a(i)
              end do
              write b(2)
            end
        """) == []

    def test_refuses_different_lcvs(self, optimizers):
        assert points(optimizers, "FUS", """
            program t
              integer i, k, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                a(i) = 1.0
              end do
              do k = 1, n
                b(k) = a(k)
              end do
              write b(2)
            end
        """) == []

    def test_refuses_backward_fused_dependence(self, optimizers):
        # the second loop reads a(i+1), written by a *later* iteration
        # of the first loop: fusing would read stale values
        assert points(optimizers, "FUS", """
            program t
              integer i, n
              real a(12), b(12)
              n = 6
              do i = 1, n
                a(i) = i * 1.0
              end do
              do i = 1, n
                b(i) = a(i+1) + 1.0
              end do
              write b(3)
            end
        """) == []

    def test_allows_forward_fused_dependence(self, optimizers):
        # reading a(i-1) is satisfied by the same or earlier iteration
        source = """
            program t
              integer i, n
              real a(12), b(12)
              n = 6
              do i = 2, n
                a(i) = i * 1.0
              end do
              do i = 2, n
                b(i) = a(i-1) + 1.0
              end do
              write b(3)
            end
        """
        assert len(points(optimizers, "FUS", source)) == 1
        optimize(optimizers, "FUS", source)

    def test_refuses_backward_scalar_anti_dependence(self, optimizers):
        # the first body *reads* z on every iteration, the second
        # *writes* it: unfused, every read completes before the first
        # write; fused, iteration i's write reaches iteration i+1's read
        assert points(optimizers, "FUS", """
            program t
              integer i, n
              real r(12)
              real x, z
              n = 6
              z = 1.0
              do i = 1, n
                x = z
                r(i) = x + 1.0
              end do
              do i = 1, n
                z = r(i) * 2.0
              end do
              write x
            end
        """) == []

    def test_refuses_inner_loop_array_reads(self, optimizers):
        # the second loop's *inner* j-loop reads r(1..3); unfused it
        # sees the first loop's final values, fused it reads elements
        # the first body has not written yet.  The inner control
        # variable must not be mistaken for the fused one (or for a
        # loop-invariant symbol).
        assert points(optimizers, "FUS", """
            program t
              integer i, j, n
              real r(12), s(12)
              n = 6
              do i = 1, n
                r(i) = i * 1.0
              end do
              do i = 1, n
                do j = 1, 3
                  s(j) = r(j) + 1.0
                end do
              end do
              write s(2)
            end
        """) == []

    def test_refuses_rewritten_fixed_element(self, optimizers):
        # a(5) is rewritten every iteration of the first loop; the
        # second loop's reads must all see the *last* write
        assert points(optimizers, "FUS", """
            program t
              integer i, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                a(5) = i * 1.0
              end do
              do i = 1, n
                b(i) = a(5)
              end do
              write b(2)
            end
        """) == []

    def test_refuses_io_bodies(self, optimizers):
        assert points(optimizers, "FUS", """
            program t
              integer i, n
              real a(10), b(10)
              n = 6
              do i = 1, n
                read a(i)
              end do
              do i = 1, n
                read b(i)
              end do
              write a(1)
            end
        """) == []


class TestInductionVariableSoundness:
    """Regression tests for the DO-variable treatment."""

    def test_lur_refuses_lcv_read_after_loop(self, optimizers):
        assert points(optimizers, "LUR", """
            program t
              integer i
              real a(10)
              do i = 1, 3
                a(i) = 1.0
              end do
              write i
            end
        """) == []

    def test_bmp_refuses_lcv_read_after_loop(self, optimizers):
        assert points(optimizers, "BMP", """
            program t
              integer i
              real a(10)
              do i = 2, 5
                a(i) = 1.0
              end do
              write i
            end
        """) == []

    def test_par_parallelizes_outer_loop_with_inner_nest(self, optimizers):
        # the inner loop's control variable is private to each
        # iteration (the header owns it), so the outer loop is DOALL
        source = """
            program t
              integer i, j, n
              real a(10,10)
              n = 6
              do i = 1, n
                do j = 1, n
                  a(i,j) = 1.0
                end do
              end do
              write a(2,2)
            end
        """
        found = points(optimizers, "PAR", source)
        assert len(found) == 2  # both levels parallelizable
