"""Behavioral tests for the scalar optimizations: CTP, CPP, DCE, CFO."""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions, find_application_points, run_optimizer
from repro.ir.interp import same_behaviour
from repro.ir.printer import format_program


def optimize(optimizers, name, source, apply_all=True):
    program = parse_program(source)
    original = program.clone()
    run_optimizer(optimizers[name], program,
                  DriverOptions(apply_all=apply_all))
    assert same_behaviour(original, program), format_program(program)
    return program


def points(optimizers, name, source):
    return find_application_points(optimizers[name], parse_program(source))


class TestCTP:
    def test_propagates_into_arithmetic(self, optimizers):
        program = optimize(optimizers, "CTP", """
            program t
              integer n, m
              n = 5
              m = n * 2
              write m
            end
        """)
        assert "5 * 2" in format_program(program)

    def test_propagates_into_loop_bound(self, optimizers):
        program = optimize(optimizers, "CTP", """
            program t
              integer i, n
              real a(10)
              n = 4
              do i = 1, n
                a(i) = 1.0
              end do
              write a(2)
            end
        """)
        assert "do i = 1, 4" in format_program(program)

    def test_propagates_into_subscript(self, optimizers):
        program = optimize(optimizers, "CTP", """
            program t
              integer k
              real a(10)
              k = 3
              a(k) = 1.0
              write a(3)
            end
        """)
        assert "a(3) := 1.0" in format_program(program)

    def test_refuses_two_reaching_defs(self, optimizers):
        assert points(optimizers, "CTP", """
            program t
              integer x, y
              x = 1
              if (y > 0) then
                x = 2
              end if
              y = x
              write y
            end
        """) == []

    def test_refuses_loop_carried_redefinition(self, optimizers):
        # x is redefined each iteration; propagating 5 into y = x would
        # be wrong from the second iteration on
        source = """
            program t
              integer i, x, y
              x = 5
              do i = 1, 3
                y = x
                x = x + 1
              end do
              write y
            end
        """
        found = points(optimizers, "CTP", source)
        assert all(str(p.get("pos")) != "a:x" or True for p in found)
        program = optimize(optimizers, "CTP", source)
        assert "y := x" in format_program(program)

    def test_refuses_array_element_source(self, optimizers):
        assert points(optimizers, "CTP", """
            program t
              integer i
              real a(10), x
              do i = 1, 3
                a(i) = 0.0
              end do
              x = a(1)
              write x
            end
        """) == []

    def test_propagation_into_if_condition(self, optimizers):
        program = optimize(optimizers, "CTP", """
            program t
              integer lim, x
              lim = 10
              read x
              if (x > lim) then
                write x
              end if
              write lim
            end
        """)
        assert "if x > 10" in format_program(program)


class TestCPP:
    def test_propagates_copy(self, optimizers):
        program = optimize(optimizers, "CPP", """
            program t
              integer x, y, z
              read x
              y = x
              z = y + 1
              write z
            end
        """)
        assert "z := x + 1" in format_program(program)

    def test_refuses_when_source_redefined_between(self, optimizers):
        assert points(optimizers, "CPP", """
            program t
              integer x, y, z
              read x
              y = x
              x = 9
              z = y + 1
              write z
            end
        """) == []

    def test_refuses_source_redefined_in_loop(self, optimizers):
        # the copy is outside, the use inside a loop that changes x
        assert points(optimizers, "CPP", """
            program t
              integer i, x, y, z
              read x
              y = x
              do i = 1, 3
                z = y + 1
                x = x + 1
              end do
              write z
            end
        """) == []

    def test_copy_inside_loop_ok_for_same_iteration_uses(self, optimizers):
        program = optimize(optimizers, "CPP", """
            program t
              integer i, x, y, z
              read x
              do i = 1, 3
                y = x
                z = y + 1
                x = z
              end do
              write z
            end
        """)
        assert "z := x + 1" in format_program(program)


class TestDCE:
    def test_removes_unused_chain(self, optimizers):
        program = optimize(optimizers, "DCE", """
            program t
              integer a, b, used
              a = 1
              b = a + 2
              used = 7
              write used
            end
        """)
        text = format_program(program)
        assert "b :=" not in text
        assert "a :=" not in text  # dead transitively, by repetition
        assert "used := 7" in text

    def test_keeps_values_feeding_writes(self, optimizers):
        program = optimize(optimizers, "DCE", """
            program t
              integer a
              a = 1
              write a
            end
        """)
        assert "a := 1" in format_program(program)

    def test_keeps_self_accumulation(self, optimizers):
        # s := s + 1 feeds itself; single-pass flow-based DCE keeps it,
        # matching liveness (s is live around the loop)
        program = optimize(optimizers, "DCE", """
            program t
              integer i, s
              s = 0
              do i = 1, 3
                s = s + 1
              end do
              write s
            end
        """)
        assert "s := s + 1" in format_program(program)

    def test_removes_dead_array_write(self, optimizers):
        program = optimize(optimizers, "DCE", """
            program t
              real a(10), x
              x = 1.0
              a(5) = 2.0
              write x
            end
        """)
        assert "a(5)" not in format_program(program)

    def test_keeps_array_write_feeding_read(self, optimizers):
        program = optimize(optimizers, "DCE", """
            program t
              real a(10)
              a(5) = 2.0
              write a(5)
            end
        """)
        assert "a(5) := 2.0" in format_program(program)


class TestCFO:
    def test_folds_binary_constant(self, optimizers):
        program = optimize(optimizers, "CFO", """
            program t
              integer x
              x = 6 * 7
              write x
            end
        """)
        assert "x := 42" in format_program(program)

    def test_skips_division_by_zero(self, optimizers):
        source = """
            program t
              integer x
              x = 1 / 0
              write 9
            end
        """
        assert points(optimizers, "CFO", source) == []

    def test_folds_division_exactly(self, optimizers):
        program = optimize(optimizers, "CFO", """
            program t
              integer x
              x = 8 / 2
              write x
            end
        """)
        assert "x := 4" in format_program(program)

    def test_chains_with_ctp(self, optimizers):
        program = parse_program("""
            program t
              integer a, b, c
              a = 6
              b = a * 7
              c = b + 0
              write c
            end
        """)
        original = program.clone()
        for name in ("CTP", "CFO", "CTP", "CFO"):
            run_optimizer(optimizers[name], program,
                          DriverOptions(apply_all=True))
        assert same_behaviour(original, program)
        assert "c := 42 + 0" in format_program(program) or (
            "c := 42" in format_program(program)
        )
