"""Unit tests for the specification catalog itself."""

import pytest

from repro.gospel.parser import parse_spec
from repro.gospel.sema import analyze_spec
from repro.opts.catalog import build_optimizer, standard_optimizers
from repro.opts.specs import (
    PAPER_TEN,
    STANDARD_SPECS,
    VARIANT_SPECS,
)


def test_catalog_covers_the_paper_ten_plus_cfo():
    assert set(PAPER_TEN) <= set(STANDARD_SPECS)
    assert "CFO" in STANDARD_SPECS
    assert len(STANDARD_SPECS) == 11


def test_every_spec_parses_and_analyzes():
    for name, source in {**STANDARD_SPECS, **VARIANT_SPECS}.items():
        analyzed = analyze_spec(parse_spec(source, name=name))
        assert analyzed.spec.name == name


def test_paper_figure_variants_kept_verbatim():
    assert "CTP_PAPER" in VARIANT_SPECS
    assert "INX_PAPER" in VARIANT_SPECS
    # Figure 1 keeps the printed (=) on the no-clause; the catalog CTP
    # widens it (soundness note in the module docstring)
    assert "flow_dep(Sl, Sj, (=))" in VARIANT_SPECS["CTP_PAPER"]
    assert "flow_dep(Sl, Sj, (=))" not in STANDARD_SPECS["CTP"]


def test_lur_variants_differ_only_in_check_order():
    upper = STANDARD_SPECS["LUR"]
    lower = VARIANT_SPECS["LUR_LOWER_FIRST"]
    assert upper.index("L1.final") < upper.index("L1.init")
    assert lower.index("L1.init") < lower.index("L1.final")


def test_build_optimizer_by_name():
    optimizer = build_optimizer("DCE")
    assert optimizer.name == "DCE"


def test_build_optimizer_variant():
    optimizer = build_optimizer("LUR_LOWER_FIRST")
    assert optimizer.name == "LUR_LOWER_FIRST"


def test_build_optimizer_unknown():
    with pytest.raises(KeyError):
        build_optimizer("ZZZ")


def test_standard_optimizers_cached():
    first = standard_optimizers(("DCE",))["DCE"]
    second = standard_optimizers(("DCE",))["DCE"]
    assert first is second


def test_paper_figure_specs_generate():
    for name in ("CTP_PAPER", "INX_PAPER"):
        optimizer = build_optimizer(name)
        assert optimizer.source
