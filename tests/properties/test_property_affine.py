"""Property-based tests for the affine expression algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.types import Affine

VARS = ("i", "j", "k", "n")


@st.composite
def affines(draw):
    coeffs = {
        var: draw(st.integers(min_value=-5, max_value=5))
        for var in draw(st.sets(st.sampled_from(VARS), max_size=3))
    }
    const = draw(st.integers(min_value=-20, max_value=20))
    return Affine.of(const, **coeffs)


def evaluate(expr: Affine, env: dict) -> int:
    return expr.const + sum(
        coeff * env[var] for var, coeff in expr.terms
    )


@st.composite
def environments(draw):
    return {var: draw(st.integers(min_value=-10, max_value=10))
            for var in VARS}


@given(affines(), affines(), environments())
def test_addition_matches_evaluation(a, b, env):
    assert evaluate(a + b, env) == evaluate(a, env) + evaluate(b, env)


@given(affines(), affines(), environments())
def test_subtraction_matches_evaluation(a, b, env):
    assert evaluate(a - b, env) == evaluate(a, env) - evaluate(b, env)


@given(affines(), environments())
def test_negation_matches_evaluation(a, env):
    assert evaluate(-a, env) == -evaluate(a, env)


@given(affines(), st.integers(min_value=-6, max_value=6), environments())
def test_scaling_matches_evaluation(a, factor, env):
    assert evaluate(a.scale(factor), env) == factor * evaluate(a, env)


@given(affines(), affines())
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(affines(), affines(), affines())
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(affines())
def test_self_subtraction_is_zero(a):
    assert a - a == Affine.constant(0)


@given(affines(), affines(), environments())
def test_substitution_matches_evaluation(a, replacement, env):
    substituted = a.substitute("i", replacement)
    inner_env = dict(env)
    inner_env["i"] = evaluate(replacement, env)
    # substitution only valid when the replacement doesn't itself use i
    if replacement.coefficient("i") == 0:
        assert evaluate(substituted, env | {"i": inner_env["i"]}) == (
            evaluate(a, inner_env)
        )


@given(affines())
def test_terms_are_canonical(a):
    # no zero coefficients, sorted variables
    assert all(coeff != 0 for _var, coeff in a.terms)
    names = [var for var, _ in a.terms]
    assert names == sorted(names)


@given(affines(), affines())
def test_equal_expressions_hash_equal(a, b):
    if a == b:
        assert hash(a) == hash(b)
