"""Property-based tests for analysis invariants on random programs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dependence import compute_dependences
from repro.analysis.dominators import compute_dominators
from repro.analysis.reaching import compute_reaching
from repro.ir.interp import run_program
from repro.workloads.synthetic import random_program

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_dependence_endpoints_exist(seed):
    program = random_program(seed, size=12)
    graph = compute_dependences(program)
    for edge in graph:
        assert program.contains(edge.src)
        assert program.contains(edge.dst)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_loop_independent_edges_respect_program_order(seed):
    program = random_program(seed, size=12)
    graph = compute_dependences(program)
    for edge in graph:
        if edge.kind == "ctrl" or edge.carried:
            continue
        if edge.src == edge.dst:
            continue
        assert program.position(edge.src) < program.position(edge.dst), edge


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_direction_vector_length_is_common_depth(seed):
    from repro.ir.loops import StructureTable

    program = random_program(seed, size=12, max_depth=3)
    graph = compute_dependences(program)
    structure = StructureTable(program)
    for edge in graph:
        if edge.kind == "ctrl":
            continue
        common = structure.common_loops(edge.src, edge.dst)
        assert len(edge.vector) == len(common), edge


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_entry_dominates_all_nodes(seed):
    program = random_program(seed, size=10)
    cfg = build_cfg(program)
    dom = compute_dominators(cfg)
    for node in range(cfg.node_count()):
        assert dom.dominates(cfg.entry, node)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_acyclic_reaching_subset_of_full(seed):
    program = random_program(seed, size=12)
    reaching = compute_reaching(program)
    for position in range(len(program)):
        full = {d.index for d in reaching.reaching_in(position)}
        acyclic = {
            d.index for d in reaching.reaching_in(position, acyclic=True)
        }
        assert acyclic <= full


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_interpreter_is_deterministic(seed):
    program = random_program(seed, size=10)
    first = run_program(program).observable()
    second = run_program(program).observable()
    assert first == second
