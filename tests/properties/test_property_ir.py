"""Property tests for the blocked-list IR container.

Random edit scripts — inserts, removes, moves, replaces, touches,
rollbacks, clones and deep restores — drive a :class:`Program` next to
a plain-list model.  After every step the order-maintenance index must
agree with the model (``position`` / ``qids`` / iteration), the
incremental fingerprint must equal a full recompute, and the store's
own structural invariants must hold.  A separate case shrinks the
change-log limit to force trimming past ``_log_floor`` and asserts
rollback fails *loudly* (``RollbackUnavailable``) while the program
state stays intact.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

import repro.ir.program as program_mod
from repro.ir.program import Program, RollbackUnavailable
from repro.ir.quad import Opcode, Quad
from repro.ir.types import Const, Var

COMMON = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fresh_quad(rng: random.Random) -> Quad:
    return Quad(
        Opcode.ASSIGN,
        result=Var(f"v{rng.randint(0, 30)}"),
        a=Const(rng.randint(0, 99)),
    )


def _seed_program(rng: random.Random, size: int) -> tuple[Program, list[int]]:
    program = Program([_fresh_quad(rng) for _ in range(size)])
    return program, [quad.qid for quad in program]


def _check(program: Program, model: list[int]) -> None:
    assert len(program) == len(model)
    assert program.qids() == model
    assert [quad.qid for quad in program] == model
    assert [quad.qid for quad in reversed(program)] == model[::-1]
    for position, qid in enumerate(model):
        assert program.position(qid) == position
    program._store.check_invariants()
    assert program.fingerprint() == program._full_fingerprint()


def _edit_once(program: Program, model: list[int], rng: random.Random) -> None:
    """One random undoable mutation, mirrored into the model."""
    kind = rng.choice(
        (
            "append",
            "insert_at",
            "insert_after",
            "insert_before",
            "remove",
            "move_after",
            "move_to_front",
            "replace",
            "touch",
        )
    )
    if not model and kind not in ("append", "insert_at"):
        kind = "append"
    if kind == "append":
        quad = program.append(_fresh_quad(rng))
        model.append(quad.qid)
    elif kind == "insert_at":
        position = rng.randint(0, len(model))
        quad = program.insert_at(position, _fresh_quad(rng))
        model.insert(position, quad.qid)
    elif kind == "insert_after":
        anchor = rng.choice(model)
        quad = program.insert_after(anchor, _fresh_quad(rng))
        model.insert(model.index(anchor) + 1, quad.qid)
    elif kind == "insert_before":
        anchor = rng.choice(model)
        quad = program.insert_before(anchor, _fresh_quad(rng))
        model.insert(model.index(anchor), quad.qid)
    elif kind == "remove":
        qid = rng.choice(model)
        program.remove(qid)
        model.remove(qid)
    elif kind == "move_after":
        if len(model) < 2:
            return
        qid = rng.choice(model)
        after = rng.choice([other for other in model if other != qid])
        program.move_after(qid, after)
        model.remove(qid)
        model.insert(model.index(after) + 1, qid)
    elif kind == "move_to_front":
        qid = rng.choice(model)
        program.move_to_front(qid)
        model.remove(qid)
        model.insert(0, qid)
    elif kind == "replace":
        qid = rng.choice(model)
        program.replace(qid, _fresh_quad(rng))
    elif kind == "touch":
        qid = rng.choice(model)
        before = program.preimage(qid)
        quad = program.quad(qid)
        quad.a = Const(rng.randint(100, 199))
        program.touch(qid, before=before)


@settings(**COMMON)
@given(st.integers(0, 10**6), st.integers(1, 40), st.integers(10, 80))
def test_edit_scripts_match_model(seed, size, steps):
    """Positions, iteration order and fingerprints track a list model
    through arbitrary edit scripts."""
    rng = random.Random(seed)
    program, model = _seed_program(rng, size)
    _check(program, model)
    for _ in range(steps):
        _edit_once(program, model, rng)
        _check(program, model)


@settings(**COMMON)
@given(st.integers(0, 10**6), st.integers(2, 25), st.integers(1, 25))
def test_rollback_restores_exact_state(seed, size, steps):
    """``rollback_to`` returns the program to the pinned version's
    exact order and rendering, and the index/fingerprint follow."""
    rng = random.Random(seed)
    program, model = _seed_program(rng, size)
    version = program.pin()
    saved_model = list(model)
    saved_render = [str(quad) for quad in program]
    saved_fp = program.fingerprint()
    for _ in range(steps):
        _edit_once(program, model, rng)
    program.unpin(version)
    program.rollback_to(version)
    _check(program, saved_model)
    assert [str(quad) for quad in program] == saved_render
    assert program.fingerprint() == saved_fp


@settings(**COMMON)
@given(st.integers(0, 10**6), st.integers(2, 25), st.integers(1, 20))
def test_clone_and_restore_from(seed, size, steps):
    """Clones are independent; ``restore_from`` recovers a snapshot's
    content (with fresh versioning) and the fingerprint agrees."""
    rng = random.Random(seed)
    program, model = _seed_program(rng, size)
    snapshot = program.clone()
    snapshot_fp = snapshot.fingerprint()
    assert snapshot_fp == program.fingerprint()
    for _ in range(steps):
        _edit_once(program, model, rng)
    # the clone never sees the edits
    assert snapshot.fingerprint() == snapshot_fp
    snapshot._store.check_invariants()
    program.restore_from(snapshot)
    assert program.fingerprint() == snapshot_fp
    assert [str(a) for a in program] == [str(b) for b in snapshot]
    program._store.check_invariants()
    assert program.fingerprint() == program._full_fingerprint()


@settings(**COMMON)
@given(seed=st.integers(0, 10**6))
def test_changelog_trim_blocks_rollback_loudly(seed):
    """Editing past the (shrunken) change-log limit trims the log;
    rolling back to a pre-trim version raises RollbackUnavailable and
    leaves the program untouched."""
    saved_limit = program_mod._CHANGELOG_LIMIT
    program_mod._CHANGELOG_LIMIT = 16
    try:
        rng = random.Random(seed)
        program, model = _seed_program(rng, 8)
        floor_version = program.version
        for _ in range(80):
            _edit_once(program, model, rng)
        assert program._log_floor > floor_version
        before_render = [str(quad) for quad in program]
        before_fp = program.fingerprint()
        with pytest.raises(RollbackUnavailable):
            program.rollback_to(floor_version)
        assert [str(quad) for quad in program] == before_render
        assert program.fingerprint() == before_fp
        _check(program, model)
    finally:
        program_mod._CHANGELOG_LIMIT = saved_limit
