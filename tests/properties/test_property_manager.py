"""Property test: incremental dependence graphs equal full rebuilds.

Drives random synthetic programs through random sequences of the
primitive transformations (modify / add / delete / move — the paper's
action primitives, applied directly to the IR) and asserts after every
step that the :class:`AnalysisManager`'s incrementally spliced graph is
edge-for-edge identical to a from-scratch recomputation.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import compute_dependences
from repro.analysis.manager import AnalysisManager
from repro.ir.program import Program
from repro.ir.quad import Opcode, Quad, STRUCTURAL_OPS
from repro.ir.types import Const, Var
from repro.workloads.synthetic import random_program

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_NAMES = ("x", "y", "z", "s", "w")


def _non_markers(program: Program) -> list[Quad]:
    return [q for q in program if q.opcode not in STRUCTURAL_OPS]


def _mutate_once(program: Program, rng: random.Random) -> bool:
    """One random primitive transformation; False when none applies.

    Mutations stay clear of the structural markers, exactly like the
    primitive actions the generated optimizers use (marker changes go
    through the full-rebuild path, exercised separately below).
    """
    candidates = _non_markers(program)
    if not candidates:
        return False
    kind = rng.choice(("modify", "add", "remove", "move"))
    if kind == "modify":
        quad = rng.choice(candidates)
        if quad.opcode is Opcode.ASSIGN:
            quad.a = rng.choice(
                (Const(rng.randint(0, 9)), Var(rng.choice(_NAMES)))
            )
        elif quad.a is not None and isinstance(quad.a, (Const, Var)):
            quad.a = Var(rng.choice(_NAMES))
        else:
            return False
        program.touch(quad.qid)
        return True
    if kind == "add":
        anchor = rng.choice(candidates)
        fresh = Quad(
            Opcode.ASSIGN,
            result=Var(rng.choice(_NAMES)),
            a=Const(rng.randint(0, 9)),
        )
        program.insert_after(anchor.qid, fresh)
        return True
    if kind == "remove":
        removable = [q for q in candidates if q.opcode is Opcode.ASSIGN]
        if not removable:
            return False
        program.remove(rng.choice(removable).qid)
        return True
    # move: relocate a statement after a sibling inside the same region
    # (moving across region boundaries would break structural nesting)
    quad = rng.choice(candidates)
    position = program.position(quad.qid)
    if position == 0:
        return False
    prev = program[position - 1]
    if prev.opcode in STRUCTURAL_OPS:
        return False
    program.move_after(quad.qid, prev.qid)  # swap with its predecessor
    return True


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    steps=st.integers(min_value=1, max_value=8),
)
def test_incremental_graph_equals_full_rebuild(seed, steps):
    program = random_program(seed, size=12, max_depth=2)
    manager = AnalysisManager(program)
    rng = random.Random(seed)
    manager.graph()
    for _ in range(steps):
        if not _mutate_once(program, rng):
            continue
        got = manager.graph().edge_set()
        want = compute_dependences(program).edge_set()
        assert got == want


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    steps=st.integers(min_value=2, max_value=6),
)
def test_batched_mutations_one_splice(seed, steps):
    """Several mutations between graph reads still splice exactly."""
    program = random_program(seed, size=12, max_depth=2)
    manager = AnalysisManager(program)
    rng = random.Random(seed + 1)
    manager.graph()
    mutated = 0
    for _ in range(steps):
        if _mutate_once(program, rng):
            mutated += 1
    if not mutated:
        return
    got = manager.graph().edge_set()
    want = compute_dependences(program).edge_set()
    assert got == want


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_marker_mutation_falls_back_soundly(seed):
    """DO -> DOALL flips (marker touches) rebuild and stay exact."""
    program = random_program(seed, size=12, max_depth=2)
    manager = AnalysisManager(program)
    manager.graph()
    heads = [q for q in program if q.opcode is Opcode.DO]
    if not heads:
        return
    head = heads[0]
    head.opcode = Opcode.DOALL
    program.touch(head.qid)
    got = manager.graph().edge_set()
    want = compute_dependences(program).edge_set()
    assert got == want
    assert manager.stats.incremental_updates == 0


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    steps=st.integers(min_value=1, max_value=8),
)
def test_shadow_check_never_fires_on_logged_mutations(seed, steps):
    """full_check mode runs clean over random primitive sequences."""
    program = random_program(seed, size=10, max_depth=2)
    manager = AnalysisManager(program, full_check=True)
    rng = random.Random(seed + 2)
    manager.graph()
    for _ in range(steps):
        if _mutate_once(program, rng):
            manager.graph()  # raises IncrementalMismatchError on a bug
