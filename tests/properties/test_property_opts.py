"""Property-based tests: every optimization preserves program behaviour
on randomly generated structured programs.

This is the reproduction's strongest correctness statement — stronger
than the paper's, which compared outputs against hand-coded optimizers
on ten programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.genesis.driver import DriverOptions, run_optimizer
from repro.ir.interp import run_program, same_behaviour
from repro.ir.printer import format_program
from repro.workloads.synthetic import random_program

SCALAR_OPTS = ("CTP", "CPP", "DCE", "CFO")
LOOP_OPTS = ("PAR", "FUS", "INX", "LUR", "BMP", "ICM", "CRC")

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("opt_name", SCALAR_OPTS)
@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_scalar_opts_preserve_semantics(optimizers, opt_name, seed):
    program = random_program(seed, size=12)
    transformed = program.clone()
    run_optimizer(
        optimizers[opt_name], transformed,
        DriverOptions(apply_all=True, max_applications=40),
    )
    assert same_behaviour(program, transformed), format_program(transformed)


@pytest.mark.parametrize("opt_name", LOOP_OPTS)
@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_loop_opts_preserve_semantics(optimizers, opt_name, seed):
    program = random_program(seed, size=14, max_depth=3)
    transformed = program.clone()
    run_optimizer(
        optimizers[opt_name], transformed,
        DriverOptions(apply_all=True, max_applications=25),
    )
    assert same_behaviour(program, transformed), format_program(transformed)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_full_sequence_preserves_semantics(optimizers, seed):
    program = random_program(seed, size=12)
    transformed = program.clone()
    for name in ("CTP", "CFO", "LUR", "FUS", "PAR", "DCE"):
        run_optimizer(
            optimizers[name], transformed,
            DriverOptions(apply_all=True, max_applications=25),
        )
    assert same_behaviour(program, transformed), format_program(transformed)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_transformed_programs_stay_structured(optimizers, seed):
    program = random_program(seed, size=12)
    for name in ("CTP", "LUR", "FUS", "BMP"):
        run_optimizer(
            optimizers[name], program,
            DriverOptions(apply_all=True, max_applications=25),
        )
        program.check_structure()


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_dce_never_grows_programs(optimizers, seed):
    program = random_program(seed, size=12)
    size_before = len(program)
    run_optimizer(
        optimizers["DCE"], program,
        DriverOptions(apply_all=True, max_applications=40),
    )
    assert len(program) <= size_before


def test_copy_propagation_seed_907_regression(optimizers):
    """Hypothesis found this falsifying example for CPP: a copy
    ``v := u`` before a loop propagated into ``u := v + -1`` inside
    it — the use statement itself redefines the copied variable, so
    every later iteration reads the clobbered value.  ``path(Si, Sj)``
    now keeps an endpoint the loop-widening pulled inside the
    interval, which lets the anti-dependence guard see the kill.
    Pinned because the example database is not committed."""
    program = random_program(907, size=12)
    transformed = program.clone()
    run_optimizer(
        optimizers["CPP"], transformed,
        DriverOptions(apply_all=True, max_applications=40),
    )
    assert same_behaviour(program, transformed), format_program(transformed)


def test_fusion_seed_451_regression(optimizers):
    """Hypothesis found this falsifying example for FUS: adjacent loops
    linked by a scalar anti dependence (the first body reads z, the
    second writes it) and by array reads inside a nested inner loop —
    both backward-carried once fused.  Pinned because the example
    database is not committed."""
    program = random_program(451, size=14, max_depth=3)
    transformed = program.clone()
    run_optimizer(
        optimizers["FUS"], transformed,
        DriverOptions(apply_all=True, max_applications=25),
    )
    assert same_behaviour(program, transformed), format_program(transformed)
