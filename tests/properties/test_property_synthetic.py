"""Property tests for the random-program generator itself.

The differential-fuzzing oracle leans entirely on
``workloads/synthetic.random_program``: if the generator emitted
structurally invalid or non-deterministic programs, every fuzz verdict
built on it would be suspect.  These properties pin down the contract
the oracle assumes — validity, determinism, and bounded execution.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.ir.interp import run_program
from repro.ir.validate import validate_program
from repro.verify.envgen import environments_for
from repro.workloads.synthetic import random_program

COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SEEDS = st.integers(min_value=0, max_value=100_000)
SIZES = st.integers(min_value=1, max_value=24)
DEPTHS = st.integers(min_value=0, max_value=3)


@settings(**COMMON)
@given(seed=SEEDS, size=SIZES, max_depth=DEPTHS)
def test_generated_programs_validate(seed, size, max_depth):
    program = random_program(seed, size=size, max_depth=max_depth)
    assert len(program) > 0
    program.check_structure()
    validate_program(program)


@settings(**COMMON)
@given(seed=SEEDS, size=SIZES, max_depth=DEPTHS)
def test_deterministic_for_fixed_seed(seed, size, max_depth):
    first = random_program(seed, size=size, max_depth=max_depth)
    second = random_program(seed, size=size, max_depth=max_depth)
    assert list(map(str, first)) == list(map(str, second))


@settings(**COMMON)
@given(seed=SEEDS)
def test_terminates_within_step_budget(seed):
    program = random_program(seed)
    env = environments_for(program, trials=1, seed=seed)[-1]
    try:
        result = run_program(
            program,
            inputs=env.inputs,
            scalars=dict(env.scalars),
            arrays={k: dict(v) for k, v in env.arrays.items()},
            max_steps=200_000,
        )
    except Exception as error:  # domain errors allowed, timeouts not
        assert "step budget" not in str(error)
    else:
        assert 0 < result.steps <= 200_000


@settings(**COMMON)
@given(seed=SEEDS)
def test_unparse_reparse_is_stable(seed):
    """The fuzzer's repro files depend on generated programs surviving
    an unparse/reparse roundtrip with identical behaviour."""
    program = random_program(seed)
    reparsed = parse_program(unparse_program(program))
    assert list(map(str, reparsed)) == list(map(str, program))
