"""Tests for the phase-ordering search subsystem."""
