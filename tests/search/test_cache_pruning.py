"""Cache-hit pruning: convergent orderings must not re-run the driver.

Search states are keyed by ``Program.fingerprint()``, and each
extension is a one-pass service job keyed by ``(state fingerprint,
pass)`` — so two orderings converging to the same program, and a whole
search restarted with the same seed, are served by the service's
result cache instead of a backend execution.
"""

import pytest

from repro.search import (
    PhaseOrderingEngine,
    SearchConfig,
    LocalEvaluator,
    search_program,
)
from repro.search.space import canonical_source
from repro.service import ServiceClient
from repro.workloads.suite import workload

PASSES = ("CTP", "CFO", "DCE")


def _client():
    return ServiceClient(backend="inprocess")


class TestConvergentOrderings:
    def test_same_extension_executes_once(self):
        """Two visits to one ``(fingerprint, pass)`` pair: one backend
        execution, one result-cache hit."""
        with _client() as client:
            engine = PhaseOrderingEngine(
                SearchConfig(opt_names=PASSES, depth=3, budget=20),
                client=client,
            )
            root = engine.start(
                canonical_source(workload("integrate").load())
            )
            first = engine.extend(root, "CTP")
            again = engine.extend(root, "CTP")
            assert first is not None and again is not None
            assert first.fingerprint == again.fingerprint
            assert engine.evaluator.stats.executed == 1
            assert engine.evaluator.stats.cache_hits == 1
            assert client.stats.cache.hits == 1

    def test_convergence_through_a_noop_pass(self):
        """FUS finds no point on ``integrate``: the orderings ``CTP``
        and ``FUS -> CTP`` converge, so the shared extension runs the
        backend exactly once."""
        with _client() as client:
            engine = PhaseOrderingEngine(
                SearchConfig(
                    opt_names=("FUS", "CTP"), depth=3, budget=20,
                ),
                client=client,
            )
            root = engine.start(
                canonical_source(workload("integrate").load())
            )
            noop = engine.extend(root, "FUS")
            assert noop is not None
            assert noop.fingerprint == root.fingerprint
            direct = engine.extend(root, "CTP")
            via_noop = engine.extend(noop, "CTP")
            assert direct is not None and via_noop is not None
            assert direct.fingerprint == via_noop.fingerprint
            # FUS and the first CTP executed; the second CTP is a hit
            assert engine.evaluator.stats.executed == 2
            assert engine.evaluator.stats.cache_hits == 1


class TestRestartedSearch:
    def test_restart_with_same_seed_is_all_cache_hits(self):
        source = workload("integrate").source
        config = SearchConfig(
            opt_names=PASSES, strategy="beam", beam_width=2,
            depth=2, budget=24, seed=7,
        )
        with _client() as client:
            first = search_program(source, config, client=client)
            assert first.backend_executions > 0
            second = search_program(source, config, client=client)
        assert second.best_sequence == first.best_sequence
        assert second.visit_order == first.visit_order
        assert second.backend_executions == 0
        assert second.cache_hits == second.evaluator.evaluations

    def test_local_memo_mirrors_the_service_cache(self):
        """The in-process memo gives the same restart behaviour when
        both searches share one evaluator."""
        source = workload("integrate").source
        config = SearchConfig(
            opt_names=PASSES, strategy="greedy", depth=2, budget=24
        )
        evaluator = LocalEvaluator(options=config.driver_options())
        first = search_program(source, config, evaluator=evaluator)
        executed_after_first = evaluator.stats.executed
        second = search_program(source, config, evaluator=evaluator)
        assert second.best_sequence == first.best_sequence
        assert evaluator.stats.executed == executed_after_first
        assert evaluator.stats.cache_hits > 0

    def test_memoless_evaluator_reexecutes(self):
        """``memo=False`` is the honest sequential baseline: a restart
        repeats every backend execution."""
        source = workload("integrate").source
        config = SearchConfig(
            opt_names=PASSES, strategy="greedy", depth=2, budget=24
        )
        evaluator = LocalEvaluator(
            options=config.driver_options(), memo=False
        )
        search_program(source, config, evaluator=evaluator)
        executed_after_first = evaluator.stats.executed
        search_program(source, config, evaluator=evaluator)
        assert evaluator.stats.executed == 2 * executed_after_first
        assert evaluator.stats.cache_hits == 0


@pytest.mark.slow
class TestProcessBackend:
    def test_search_through_worker_processes(self):
        """A real process-pool run: duplicated evaluations are served
        by the cache or coalesced onto in-flight jobs, never run
        twice."""
        source = workload("integrate").source
        config = SearchConfig(
            opt_names=PASSES, strategy="beam", beam_width=2,
            depth=2, budget=24,
        )
        with ServiceClient(backend="process", max_workers=2) as client:
            first = search_program(source, config, client=client)
            second = search_program(source, config, client=client)
            stats = client.stats
        assert first.best_sequence == second.best_sequence
        assert second.backend_executions == 0
        assert stats.cache_served + stats.coalesced >= (
            second.evaluator.evaluations
        )
