"""Oracle-certification regression: every workload's best-found
pipeline must pass the differential-testing oracle.

This is a tier-1 gate, not a fuzz-marked extra: a search result that
cannot be certified on at least three seeded environments is a bug in
either the search or an optimization, and should fail fast."""

from repro.search import SearchConfig, search_suite
from repro.workloads.suite import full_suite


def test_suite_best_pipelines_certify():
    config = SearchConfig(
        opt_names=("CTP", "CFO", "DCE", "LUR"),
        strategy="greedy",
        depth=2,
        budget=16,
    )
    results = search_suite(config=config, oracle_trials=3)
    assert len(results) == len(full_suite())
    for result in results:
        assert result.certified is True, (
            f"{result.name}: {result.oracle_summary}"
        )
        assert result.oracle_trials >= 3
        assert result.best_score <= result.baseline_cycles[
            config.objective
        ]
