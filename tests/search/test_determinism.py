"""Property tests: the determinism contract of ``repro.search``.

The engine promises bit-for-bit reproducibility: same seed, same best
pipeline *and* same visit order; width-1 strategies coincide exactly;
and every reported sequence replays through the ordinary driver
pipeline to the fingerprint the search recorded.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.search import SearchConfig, replay_sequence, search_program
from repro.workloads.suite import workload

PASSES = ("CTP", "CFO", "DCE", "LUR")
WORKLOADS = ("integrate", "poly", "ordering")

SEARCH_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _config(strategy: str, seed: int) -> SearchConfig:
    return SearchConfig(
        opt_names=PASSES,
        strategy=strategy,
        depth=2,
        beam_width=2,
        budget=24,
        iterations=2,
        seed=seed,
    )


@SEARCH_SETTINGS
@given(
    name=st.sampled_from(WORKLOADS),
    strategy=st.sampled_from(("beam", "greedy", "iterated")),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_same_seed_same_best_and_visit_order(name, strategy, seed):
    source = workload(name).source
    config = _config(strategy, seed)
    first = search_program(source, config, name=name)
    second = search_program(source, config, name=name)
    assert first.best_sequence == second.best_sequence
    assert first.best_fingerprint == second.best_fingerprint
    assert first.best_score == second.best_score
    assert first.visit_order == second.visit_order


@SEARCH_SETTINGS
@given(
    name=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_width_one_strategies_coincide(name, seed):
    source = workload(name).source
    greedy = search_program(source, _config("greedy", seed))
    beam_one = search_program(
        source,
        SearchConfig(
            opt_names=PASSES, strategy="beam", beam_width=1,
            depth=2, budget=24, seed=seed,
        ),
    )
    iterated_once = search_program(
        source,
        SearchConfig(
            opt_names=PASSES, strategy="iterated", iterations=1,
            depth=2, budget=24, seed=seed,
        ),
    )
    assert greedy.best_sequence == beam_one.best_sequence
    assert greedy.best_sequence == iterated_once.best_sequence
    assert greedy.visit_order == beam_one.visit_order
    assert greedy.visit_order == iterated_once.visit_order


@SEARCH_SETTINGS
@given(
    name=st.sampled_from(WORKLOADS),
    strategy=st.sampled_from(("beam", "greedy", "iterated", "exhaustive")),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_best_sequence_replays_to_recorded_fingerprint(
    name, strategy, seed
):
    source = workload(name).source
    config = _config(strategy, seed)
    result = search_program(source, config, name=name)
    replayed = replay_sequence(
        source, result.best_sequence, config.driver_options()
    )
    assert replayed.fingerprint() == result.best_fingerprint
