"""Unit tests for the search engine: config, budget, pruning, wiring."""

import pytest

from repro.genesis.session import OptimizerSession, SessionError
from repro.opts.catalog import standard_optimizers
from repro.search import (
    SearchConfig,
    SearchError,
    certify,
    make_strategy,
    search_program,
)
from repro.workloads.suite import workload

PASSES = ("CTP", "CFO", "DCE")


def small_config(**overrides):
    settings = dict(
        opt_names=PASSES, strategy="greedy", depth=2, budget=20
    )
    settings.update(overrides)
    return SearchConfig(**settings)


class TestConfig:
    def test_validates_depth(self):
        with pytest.raises(SearchError):
            small_config(depth=0)

    def test_validates_budget(self):
        with pytest.raises(SearchError):
            small_config(budget=0)

    def test_validates_beam_width(self):
        with pytest.raises(SearchError):
            small_config(beam_width=0)

    def test_validates_objective(self):
        with pytest.raises(SearchError):
            small_config(objective="abacus")

    def test_needs_passes(self):
        with pytest.raises(SearchError):
            small_config(opt_names=())

    def test_unknown_strategy(self):
        with pytest.raises(SearchError, match="unknown search strategy"):
            make_strategy(small_config(strategy="dowsing"))


class TestSearchProgram:
    def test_finds_improvement(self):
        result = search_program(
            workload("integrate").source, small_config(), name="integrate"
        )
        assert result.best_sequence
        assert result.best_score < result.baseline_cycles["multiprocessor"]
        assert all(value >= 0 for value in result.benefit.values())

    def test_budget_bounds_evaluations(self):
        result = search_program(
            workload("integrate").source,
            small_config(strategy="beam", beam_width=4, depth=3, budget=4),
        )
        assert result.evaluator.evaluations <= 4
        assert result.exhausted

    def test_prune_counts_convergent_branches(self):
        pruned = search_program(
            workload("ordering").source,
            small_config(
                opt_names=("CTP", "FUS", "INX", "LUR"),
                strategy="beam", beam_width=4, depth=3, budget=60,
            ),
        )
        unpruned = search_program(
            workload("ordering").source,
            small_config(
                opt_names=("CTP", "FUS", "INX", "LUR"),
                strategy="beam", beam_width=4, depth=3, budget=60,
                prune=False,
            ),
        )
        assert pruned.pruned > 0
        assert unpruned.pruned == 0

    def test_result_round_trips_to_dict(self):
        result = search_program(
            workload("poly").source, small_config(), name="poly"
        )
        payload = result.to_dict()
        assert payload["name"] == "poly"
        assert payload["best_sequence"] == list(result.best_sequence)
        assert payload["backend_executions"] == result.backend_executions
        assert "best pipeline" in result.summary()


class TestCertify:
    def test_certifies_winner(self):
        source = workload("integrate").source
        result = search_program(source, small_config())
        certify(result, source, trials=3)
        assert result.certified is True
        assert result.oracle_trials >= 3
        assert "oracle: PASSED" in result.summary()

    def test_fingerprint_mismatch_is_loud(self):
        source = workload("integrate").source
        result = search_program(source, small_config())
        result.best_fingerprint = "0" * 64
        with pytest.raises(SearchError, match="disagree"):
            certify(result, source)


class TestPipelineWiring:
    def test_optimize_searched_applies_winner(self):
        from repro.genesis.pipeline import optimize_searched

        program = workload("integrate").load()
        report, result = optimize_searched(
            program, PASSES, strategy="greedy", depth=2, budget=20
        )
        assert result.certified is True
        assert report.program.fingerprint() == result.best_fingerprint
        assert [r.optimizer for r in report.results] == list(
            result.best_sequence
        )


class TestSessionCommand:
    def _session(self):
        return OptimizerSession.from_source(
            workload("integrate").source,
            optimizers=standard_optimizers(PASSES).values(),
        )

    def test_search_command_reports_summary(self):
        session = self._session()
        output = session.execute_command("search greedy 2 20")
        assert "best pipeline" in output
        assert "oracle: PASSED" in output
        assert any(
            event.command.startswith("search") for event in session.history
        )

    def test_search_apply_transforms_the_program(self):
        session = self._session()
        before = session.program.fingerprint()
        session.execute_command("search apply greedy 2 20")
        assert session.program.fingerprint() != before

    def test_bad_strategy_is_a_session_error(self):
        session = self._session()
        with pytest.raises(SessionError):
            session.execute_command("search dowsing 2 20")
        assert session.history[-1].error is not None
