"""Cross-checks: exhaustive enumeration vs beam search, and the E4
ordering experiment riding the same engine."""

from itertools import permutations

from repro.experiments.ordering import TRIO, run_ordering
from repro.search import SearchConfig, search_program
from repro.workloads.suite import workload


def _base(**overrides):
    settings = dict(
        opt_names=TRIO,
        depth=len(TRIO),
        budget=500,
        allow_repeats=False,
        apply_all=False,
    )
    settings.update(overrides)
    return SearchConfig(**settings)


class TestExhaustiveEqualsWideBeam:
    def test_same_best_at_tiny_depth(self):
        """Exhaustive enumeration and an infinitely wide beam agree on
        the best pipeline: pruning and unchanged-dropping may skip
        duplicate states, but never the first state to achieve a
        score."""
        source = workload("ordering").source
        exhaustive = search_program(
            source,
            _base(strategy="exhaustive", prune=False, record_leaves=True),
        )
        wide_beam = search_program(
            source, _base(strategy="beam", beam_width=10_000)
        )
        assert wide_beam.best_score == exhaustive.best_score
        assert wide_beam.best_fingerprint == exhaustive.best_fingerprint
        assert wide_beam.best_sequence == exhaustive.best_sequence

    def test_leaves_enumerate_every_permutation_in_order(self):
        result = search_program(
            workload("ordering").source,
            _base(strategy="exhaustive", prune=False, record_leaves=True),
        )
        assert [leaf.sequence for leaf in result.leaves] == list(
            permutations(TRIO)
        )
        # a pass with no application point still occupies its slot
        assert all(len(leaf.applied) == len(TRIO) for leaf in result.leaves)


class TestOrderingExperiment:
    def test_rides_the_search_engine(self):
        result = run_ordering()
        assert result.search is not None
        assert result.search.strategy == "exhaustive"
        assert len(result.runs) == 6
        assert {run.order for run in result.runs} == set(
            permutations(TRIO)
        )
        # the paper's point: different orders, different programs
        assert result.distinct_programs > 1
        assert all(result.claims.values())
