"""Shared helpers for the service tests: real server subprocesses."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest


class ServerProcess:
    """One ``genesis serve --listen`` subprocess with a port-file
    handshake, for tests that need a real network server to abuse."""

    def __init__(self, tmp_path: Path, *extra_args: str, env=None):
        self.port_file = tmp_path / f"port-{time.monotonic_ns()}"
        self.log_path = tmp_path / f"server-{time.monotonic_ns()}.log"
        run_env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        run_env["PYTHONPATH"] = os.pathsep.join(
            [src, run_env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        if env:
            run_env.update(env)
        self._log_handle = open(self.log_path, "w")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", "127.0.0.1:0",
                "--port-file", str(self.port_file),
                *extra_args,
            ],
            env=run_env,
            stdout=subprocess.DEVNULL,
            stderr=self._log_handle,
        )
        deadline = time.monotonic() + 30
        while not self.port_file.exists():
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died during startup "
                    f"(exit {self.proc.returncode}):\n{self.log_text()}"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise RuntimeError("server did not bind in time")
            time.sleep(0.02)
        self.port = int(self.port_file.read_text())

    def log_text(self) -> str:
        self._log_handle.flush()
        return self.log_path.read_text()

    def sigterm(self) -> int:
        """Graceful drain; returns the exit status."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._log_handle.close()


@pytest.fixture
def server_factory(tmp_path):
    """Start servers; everything started is torn down after the test."""
    started = []

    def start(*extra_args: str, env=None) -> ServerProcess:
        server = ServerProcess(tmp_path, *extra_args, env=env)
        started.append(server)
        return server

    yield start
    for server in started:
        server.stop()
