"""Worker backends: execution parity, crash isolation, reaping.

The ``slow`` tests fork real worker processes and exercise wall-clock
deadlines; CI's service smoke job deselects them with ``-m "not slow"``.
"""

import pytest

from repro.service import (
    COMPLETED,
    FAILED,
    InProcessBackend,
    OptimizationService,
    ProcessPoolBackend,
    ServiceClient,
    ServiceConfig,
    execute_job,
)
from repro.service.backends import CHAOS_EXIT_CODE
from repro.service.job import Job
from repro.workloads.programs import SOURCES


def _job(name="fft", opts=("CTP", "CFO", "DCE"), **extra):
    return Job.from_source(SOURCES[name], opts, **extra)


def test_execute_job_runs_the_pipeline():
    result = execute_job(_job())
    assert result.status == COMPLETED
    assert result.applications > 0
    assert sum(result.per_optimizer.values()) == result.applications
    assert result.elapsed_seconds > 0


def test_execute_job_contains_unknown_optimization():
    result = execute_job(_job(opts=("NOPE",)))
    assert result.status == FAILED
    assert result.failure is not None
    assert result.failure.phase == "execute"
    assert "NOPE" in result.failure.error


def test_execute_job_rejects_unknown_kind():
    job = _job()
    job.kind = "mystery"
    result = execute_job(job)
    assert result.status == FAILED
    assert "mystery" in result.failure.error


def test_inprocess_backend_simulates_worker_faults():
    with OptimizationService(ServiceConfig(backend="inprocess")) as service:
        crashed = service.wait(service.submit(_job(chaos="exit")))
        assert crashed.status == FAILED
        assert crashed.failure.error_type == "WorkerCrashed"
        stalled = service.wait(service.submit(_job(chaos="stall")))
        assert stalled.status == FAILED
        assert stalled.failure.error_type == "WorkerStalled"


@pytest.mark.slow
def test_process_backend_matches_inprocess_output():
    job = _job("newton")
    with ServiceClient(backend="inprocess") as client:
        serial = client.wait(client.submit(job))
    with ServiceClient(backend="process", max_workers=2) as client:
        parallel = client.wait(client.submit(_job("newton")))
    assert serial.ok and parallel.ok
    assert parallel.source == serial.source
    assert parallel.applications == serial.applications
    assert parallel.worker.startswith("pid:")


@pytest.mark.slow
def test_crashed_worker_reported_and_batch_survives():
    """The acceptance scenario: a worker killed mid-job yields a
    structured failure, the batch completes, and the surviving results
    are byte-identical to a serial run."""
    names = ["newton", "fft", "poly", "tridiag"]
    jobs = [_job(name) for name in names]
    jobs[1].chaos = "exit"  # hard-kill fft's worker mid-job
    with ServiceClient(backend="process", max_workers=2) as client:
        results = client.run_batch(jobs, timeout=120.0)
        stats = client.stats
    dead = results[1]
    assert dead.status == FAILED
    assert dead.failure.error_type == "WorkerCrashed"
    assert str(CHAOS_EXIT_CODE) in dead.failure.error
    assert dead.failure.restored == "isolation"
    assert stats.crashes == 1
    survivors = [r for i, r in enumerate(results) if i != 1]
    assert all(r.ok for r in survivors)
    with ServiceClient(backend="inprocess") as client:
        serial = client.run_batch(
            [_job(name) for name in names if name != "fft"]
        )
    for parallel_result, serial_result in zip(survivors, serial):
        assert parallel_result.source == serial_result.source
        assert parallel_result.applications == serial_result.applications


@pytest.mark.slow
def test_stalled_worker_reaped_at_deadline():
    with ServiceClient(
        backend="process", max_workers=2, default_deadline=60.0
    ) as client:
        stalled_id = client.submit(_job("fft", chaos="stall",
                                        deadline_seconds=0.5))
        healthy_id = client.submit(_job("newton"))
        stalled = client.wait(stalled_id, timeout=60.0)
        healthy = client.wait(healthy_id, timeout=60.0)
        stats = client.stats
    assert stalled.status == FAILED
    assert stalled.failure.error_type == "JobDeadlineExceeded"
    assert stats.reaped >= 1
    assert healthy.ok


@pytest.mark.slow
def test_close_reaps_running_workers():
    backend = ProcessPoolBackend(max_workers=1)
    service = OptimizationService(
        ServiceConfig(backend="process"), backend=backend
    )
    job_id = service.submit(_job("fft", chaos="stall"))
    service.close()
    result = service.result(job_id)
    assert result.status == FAILED
    assert result.failure.error_type == "ServiceClosed"


def test_execute_job_honours_payload_quarantine_after(monkeypatch):
    import repro.genesis.pipeline as pipeline_mod

    seen = {}
    real_optimize = pipeline_mod.optimize

    def spy(*args, **kwargs):
        seen["quarantine_after"] = kwargs.get("quarantine_after", 5)
        return real_optimize(*args, **kwargs)

    monkeypatch.setattr(pipeline_mod, "optimize", spy)
    result = execute_job(_job(payload={"quarantine_after": 2}))
    assert result.status == COMPLETED
    assert seen["quarantine_after"] == 2
    # without the payload knob the pipeline default stands
    execute_job(_job("newton"))
    assert seen["quarantine_after"] == 5


@pytest.mark.slow
def test_process_backend_releases_finished_handles():
    """A finished job's pipe end is closed and its handle pruned, so a
    long-running service does not leak one fd + process per job."""
    import time

    backend = ProcessPoolBackend(max_workers=2)
    first = backend.spawn(_job("newton", opts=("CTP",)))
    give_up = time.monotonic() + 60.0
    while first.poll() is None and time.monotonic() < give_up:
        time.sleep(0.01)
    assert first.poll() is not None
    assert first.finished
    assert first._conn.closed
    second = backend.spawn(_job("poly", opts=("CTP",)))
    assert backend._handles == [second]
    backend.close()


def test_backend_name_and_width():
    assert InProcessBackend(0).max_workers == 1
    assert ProcessPoolBackend(0).max_workers == 1
    assert InProcessBackend().name == "inprocess"
    assert ProcessPoolBackend().name == "process"
