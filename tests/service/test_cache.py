"""The LRU result cache: recency, counters, cacheability."""

import pytest

from repro.service.cache import ResultCache
from repro.service.job import COMPLETED, FAILED, JobResult, job_failure


def _ok(job_id=1, source="program p\nend\n"):
    return JobResult(job_id=job_id, status=COMPLETED, source=source)


def test_hit_returns_marked_copy():
    cache = ResultCache(capacity=4)
    cache.put("k", _ok())
    hit = cache.get("k")
    assert hit is not None and hit.cached
    # the stored entry itself stays unmarked
    assert not cache.get("k").coalesced
    again = cache.get("k")
    assert again is not hit
    assert cache.stats.hits == 3 and cache.stats.misses == 0


def test_miss_counts():
    cache = ResultCache(capacity=4)
    assert cache.get("absent") is None
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.0


def test_lru_eviction_order():
    cache = ResultCache(capacity=2)
    cache.put("a", _ok(1))
    cache.put("b", _ok(2))
    assert cache.get("a") is not None  # refresh a: b is now oldest
    cache.put("c", _ok(3))
    assert cache.stats.evictions == 1
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert len(cache) == 2


def test_failures_are_not_cached():
    cache = ResultCache(capacity=4)
    cache.put(
        "k",
        JobResult(
            job_id=1,
            status=FAILED,
            failure=job_failure("worker", "WorkerCrashed", "died"),
        ),
    )
    assert len(cache) == 0 and cache.stats.stores == 0
    assert cache.get("k") is None


def test_zero_capacity_disables_caching():
    cache = ResultCache(capacity=0)
    cache.put("k", _ok())
    assert cache.get("k") is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(capacity=-1)
