"""The batch consumers through the service == their serial selves."""

import pytest

from repro.service import ServiceClient
from repro.verify.chaos import ChaosConfig, run_chaos
from repro.verify.fuzz import FuzzConfig, run_fuzz


@pytest.fixture()
def client():
    with ServiceClient(backend="inprocess") as service_client:
        yield service_client


def test_fuzz_service_path_matches_serial(client):
    config = FuzzConfig(iterations=3, size=10, opt_names=("CTP", "DCE"))
    serial = run_fuzz(config)
    via_service = run_fuzz(config, client=client)
    assert (serial.programs, serial.checks, serial.applications) == (
        via_service.programs,
        via_service.checks,
        via_service.applications,
    )
    assert len(serial.failures) == len(via_service.failures)
    assert client.stats.submitted > 0


def test_fuzz_broken_fixture_falls_back_to_serial(client):
    # a deliberately broken optimizer cannot cross a process boundary:
    # its checks run serially and still surface the divergence
    config = FuzzConfig(
        iterations=2, size=10, opt_names=("CTP", "BROKEN_DCE"),
        pipeline=False, shrink=False,
    )
    report = run_fuzz(config, client=client)
    serial = run_fuzz(config)
    assert len(report.failures) == len(serial.failures)
    assert report.checks == serial.checks


def test_fuzz_injected_optimizers_force_serial(client):
    from repro.opts.catalog import build_optimizer

    config = FuzzConfig(iterations=1, size=8, opt_names=("CTP",),
                        pipeline=False)
    submitted_before = client.stats.submitted
    report = run_fuzz(
        config, optimizers={"CTP": build_optimizer("CTP")}, client=client
    )
    assert report.programs == 1
    assert client.stats.submitted == submitted_before


def test_fuzz_windows_submissions_to_queue_limit():
    class _CountingClient(ServiceClient):
        """Tracks how many submissions are in flight at once."""

        def __init__(self, **settings):
            super().__init__(**settings)
            self.outstanding = 0
            self.max_outstanding = 0

        def submit(self, job):
            self.outstanding += 1
            self.max_outstanding = max(self.max_outstanding,
                                       self.outstanding)
            return super().submit(job)

        def wait(self, job_id, timeout=None):
            result = super().wait(job_id, timeout=timeout)
            self.outstanding -= 1
            return result

    # 3 iterations x (3 opts + pipeline) = 12 jobs against a queue of 4:
    # eager submission would reject, the window never exceeds the limit
    config = FuzzConfig(iterations=3, size=10,
                        opt_names=("CTP", "DCE", "CFO"))
    with _CountingClient(backend="inprocess", queue_limit=4) as client:
        report = run_fuzz(config, client=client)
        assert client.stats.submitted == 12
        assert client.stats.rejected == 0
        assert client.max_outstanding <= 4
    serial = run_fuzz(config)
    assert (report.programs, report.checks, report.applications) == (
        serial.programs, serial.checks, serial.applications
    )


def test_fuzz_retries_rejected_submissions():
    from repro.service.job import JobResult, REJECTED, job_failure

    class _FlakyClient(ServiceClient):
        """Synthesizes admission rejections for the first two waits."""

        def __init__(self):
            super().__init__(backend="inprocess")
            self.rejections_left = 2

        def wait(self, job_id, timeout=None):
            result = super().wait(job_id, timeout=timeout)
            if self.rejections_left and result.ok:
                self.rejections_left -= 1
                return JobResult(
                    job_id=job_id,
                    status=REJECTED,
                    failure=job_failure(
                        "admission", "QueueFull", "synthetic rejection"
                    ),
                )
            return result

    config = FuzzConfig(iterations=2, size=10, opt_names=("CTP", "DCE"),
                        pipeline=False)
    with _FlakyClient() as client:
        report = run_fuzz(config, client=client)
        assert client.rejections_left == 0
    serial = run_fuzz(config)
    assert (report.programs, report.checks, report.applications) == (
        serial.programs, serial.checks, serial.applications
    )


def test_chaos_baselines_carry_quarantine_after(client, monkeypatch):
    jobs = []
    real_submit = client.submit

    def recording_submit(job):
        jobs.append(job)
        return real_submit(job)

    monkeypatch.setattr(client, "submit", recording_submit)
    config = ChaosConfig(seed=1, act_fault_rate=0.2)
    report = run_chaos(config, program_names=["newton"], client=client,
                       quarantine_after=7)
    assert report.ok
    assert [job.payload["quarantine_after"] for job in jobs] == [7]


def test_chaos_service_baselines_match_serial(client):
    config = ChaosConfig(seed=3, act_fault_rate=0.2)
    names = ["newton", "poly"]
    via_service = run_chaos(config, program_names=names, client=client)
    serial = run_chaos(config, program_names=names)
    assert via_service.ok and serial.ok
    for service_run, serial_run in zip(via_service.runs, serial.runs):
        assert (
            service_run.baseline_applications
            == serial_run.baseline_applications
        )
    assert client.stats.submitted == len(names)


def test_experiments_components_fan_out(client):
    from repro.experiments.runner import run_all_experiments
    from repro.workloads.suite import full_suite

    workloads = full_suite()[:3]
    serial = run_all_experiments(workloads)
    via_service = run_all_experiments(workloads, client=client)
    assert serial.claim_summary == via_service.claim_summary
    # deterministic sections render identically; only measured-time
    # columns (E5) may differ between any two runs
    assert serial.quality.table() == via_service.quality.table()
    assert serial.applicability.table() == via_service.applicability.table()
    assert serial.enabling.table() == via_service.enabling.table()
    assert client.stats.submitted == 7


def test_experiments_custom_workloads_stay_serial(client):
    from repro.experiments.runner import run_all_experiments
    from repro.workloads.suite import Workload

    custom = [Workload(name="tiny", source="program tiny\nend\n")]
    submitted_before = client.stats.submitted
    report = run_all_experiments(custom, client=client)
    assert client.stats.submitted == submitted_before
    assert report.claim_summary  # the study still ran (serially)


def test_run_experiment_component_unknown_name():
    from repro.experiments.runner import run_experiment_component

    with pytest.raises(KeyError):
        run_experiment_component("nonsense")
