"""The batch consumers through the service == their serial selves."""

import pytest

from repro.service import ServiceClient
from repro.verify.chaos import ChaosConfig, run_chaos
from repro.verify.fuzz import FuzzConfig, run_fuzz


@pytest.fixture()
def client():
    with ServiceClient(backend="inprocess") as service_client:
        yield service_client


def test_fuzz_service_path_matches_serial(client):
    config = FuzzConfig(iterations=3, size=10, opt_names=("CTP", "DCE"))
    serial = run_fuzz(config)
    via_service = run_fuzz(config, client=client)
    assert (serial.programs, serial.checks, serial.applications) == (
        via_service.programs,
        via_service.checks,
        via_service.applications,
    )
    assert len(serial.failures) == len(via_service.failures)
    assert client.stats.submitted > 0


def test_fuzz_broken_fixture_falls_back_to_serial(client):
    # a deliberately broken optimizer cannot cross a process boundary:
    # its checks run serially and still surface the divergence
    config = FuzzConfig(
        iterations=2, size=10, opt_names=("CTP", "BROKEN_DCE"),
        pipeline=False, shrink=False,
    )
    report = run_fuzz(config, client=client)
    serial = run_fuzz(config)
    assert len(report.failures) == len(serial.failures)
    assert report.checks == serial.checks


def test_fuzz_injected_optimizers_force_serial(client):
    from repro.opts.catalog import build_optimizer

    config = FuzzConfig(iterations=1, size=8, opt_names=("CTP",),
                        pipeline=False)
    submitted_before = client.stats.submitted
    report = run_fuzz(
        config, optimizers={"CTP": build_optimizer("CTP")}, client=client
    )
    assert report.programs == 1
    assert client.stats.submitted == submitted_before


def test_chaos_service_baselines_match_serial(client):
    config = ChaosConfig(seed=3, act_fault_rate=0.2)
    names = ["newton", "poly"]
    via_service = run_chaos(config, program_names=names, client=client)
    serial = run_chaos(config, program_names=names)
    assert via_service.ok and serial.ok
    for service_run, serial_run in zip(via_service.runs, serial.runs):
        assert (
            service_run.baseline_applications
            == serial_run.baseline_applications
        )
    assert client.stats.submitted == len(names)


def test_experiments_components_fan_out(client):
    from repro.experiments.runner import run_all_experiments
    from repro.workloads.suite import full_suite

    workloads = full_suite()[:3]
    serial = run_all_experiments(workloads)
    via_service = run_all_experiments(workloads, client=client)
    assert serial.claim_summary == via_service.claim_summary
    # deterministic sections render identically; only measured-time
    # columns (E5) may differ between any two runs
    assert serial.quality.table() == via_service.quality.table()
    assert serial.applicability.table() == via_service.applicability.table()
    assert serial.enabling.table() == via_service.enabling.table()
    assert client.stats.submitted == 7


def test_experiments_custom_workloads_stay_serial(client):
    from repro.experiments.runner import run_all_experiments
    from repro.workloads.suite import Workload

    custom = [Workload(name="tiny", source="program tiny\nend\n")]
    submitted_before = client.stats.submitted
    report = run_all_experiments(custom, client=client)
    assert client.stats.submitted == submitted_before
    assert report.claim_summary  # the study still ran (serially)


def test_run_experiment_component_unknown_name():
    from repro.experiments.runner import run_experiment_component

    with pytest.raises(KeyError):
        run_experiment_component("nonsense")
