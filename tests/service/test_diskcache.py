"""The persistent disk tier: atomicity, checksums, versions, GC."""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro._version import __version__
from repro.genesis.driver import DriverOptions
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.diskcache import (
    CACHE_CRASH_EXIT,
    CHAOS_ENV,
    DiskCache,
    _TMP_GRACE_SECONDS,
)
from repro.service.job import Job, JobResult
from repro.workloads.programs import SOURCES

SOURCE = SOURCES["poly"]


def _result(job_id=1, source="x = 1\n"):
    return JobResult(
        job_id=job_id,
        status="completed",
        fingerprint="f" * 16,
        source=source,
        applications=2,
    )


def _job(source=SOURCE, opts=("CTP", "DCE")):
    return Job.from_source(source, opts, DriverOptions(apply_all=True))


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, _result())
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.source == "x = 1\n"
        assert loaded.cache_key == key
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_sharded_layout(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, _result())
        assert (tmp_path / "cd" / f"{key}.json").exists()

    def test_miss_counts(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("ee" + "0" * 62) is None
        assert cache.stats.misses == 1

    def test_failed_results_are_not_stored(self, tmp_path):
        cache = DiskCache(tmp_path)
        bad = JobResult(job_id=1, status="failed", fingerprint="f")
        cache.put("ff" + "0" * 62, bad)
        assert cache.stats.stores == 0
        assert len(cache) == 0

    def test_shared_across_instances(self, tmp_path):
        key = "aa" + "0" * 62
        DiskCache(tmp_path).put(key, _result())
        other = DiskCache(tmp_path)  # a different process, in spirit
        assert other.get(key) is not None


class TestCorruption:
    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "1" * 62
        cache.put(key, _result())
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get(key) is None
        assert cache.stats.corrupt_dropped == 1
        assert not path.exists(), "corrupt entry must be deleted"

    def test_bitflipped_payload_fails_checksum(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "2" * 62
        cache.put(key, _result(source="x = 1\n"))
        path = cache.path_for(key)
        envelope = json.loads(path.read_bytes())
        envelope["payload"]["source"] = "x = 2\n"  # tampered
        path.write_text(json.dumps(envelope))
        assert cache.get(key) is None
        assert cache.stats.corrupt_dropped == 1
        assert not path.exists()

    def test_verify_classifies_corrupt_entries(self, tmp_path):
        cache = DiskCache(tmp_path)
        good = "ab" + "3" * 62
        bad = "ab" + "4" * 62
        cache.put(good, _result())
        cache.put(bad, _result())
        path = cache.path_for(bad)
        path.write_bytes(b"not json at all")
        report = cache.verify()
        assert report.entries == 2
        assert report.valid == 1
        assert [str(path)] == report.corrupt
        assert not report.ok
        # verify is read-only: the corrupt entry is still there
        assert path.exists()


class TestVersioning:
    def test_version_mismatch_is_a_silent_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "5" * 62
        cache.put(key, _result())
        path = cache.path_for(key)
        envelope = json.loads(path.read_bytes())
        envelope["version"] = "0.0.0-older"
        path.write_text(json.dumps(envelope))
        assert cache.get(key) is None
        assert cache.stats.version_misses == 1
        assert cache.stats.corrupt_dropped == 0
        assert path.exists(), "stale entries are kept, not quarantined"

    def test_format_mismatch_is_a_silent_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "6" * 62
        cache.put(key, _result())
        path = cache.path_for(key)
        envelope = json.loads(path.read_bytes())
        envelope["format"] = 999
        path.write_text(json.dumps(envelope))
        assert cache.get(key) is None
        assert cache.stats.version_misses == 1

    def test_entries_embed_running_version(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "7" * 62
        cache.put(key, _result())
        envelope = json.loads(cache.path_for(key).read_bytes())
        assert envelope["version"] == __version__
        assert envelope["key"] == key
        report = cache.verify()
        assert envelope["version"] != "0.0.0"  # sanity: single-sourced
        assert report.stale == []


class TestGC:
    def test_size_cap_evicts_oldest_first(self, tmp_path):
        probe = DiskCache(tmp_path / "probe")
        probe.put("aa" + "0" * 62, _result(source="old\n"))
        entry_size = probe.path_for("aa" + "0" * 62).stat().st_size
        # room for one entry but not two
        cache = DiskCache(tmp_path, limit_bytes=entry_size + 8)
        old = "aa" + "8" * 62
        new = "bb" + "8" * 62
        cache.put(old, _result(source="old\n"))
        entry = cache.path_for(old)
        past = time.time() - 1000
        os.utime(entry, (past, past))
        cache.put(new, _result(source="new\n"))
        # the second put triggered GC; the older entry went first
        assert cache.stats.gc_evictions >= 1
        assert not entry.exists()
        assert cache.path_for(new).exists()

    def test_read_refreshes_mtime(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "cc" + "9" * 62
        cache.put(key, _result())
        path = cache.path_for(key)
        past = time.time() - 1000
        os.utime(path, (past, past))
        cache.get(key)
        assert path.stat().st_mtime > past + 500

    def test_stale_tmp_files_swept_on_startup(self, tmp_path):
        first = DiskCache(tmp_path)
        shard = tmp_path / "ab"
        shard.mkdir(exist_ok=True)
        tmp = shard / ("x" * 64 + ".json.tmp-999999999")
        tmp.write_bytes(b"half-written")
        old = time.time() - _TMP_GRACE_SECONDS - 10
        os.utime(tmp, (old, old))
        fresh = DiskCache(tmp_path)
        assert not tmp.exists()
        assert fresh.stats.tmp_swept == 1
        assert first.stats.tmp_swept == 0


class TestCrashMidWrite:
    def test_crash_put_leaves_no_published_entry(self, tmp_path):
        """A process dying mid-write strands a temp file at worst."""
        script = textwrap.dedent(
            """
            import sys
            from repro.service.diskcache import DiskCache
            from repro.service.job import JobResult
            cache = DiskCache(sys.argv[1])
            result = JobResult(
                job_id=1, status="completed", fingerprint="f",
                source="y = 2\\n",
            )
            cache.put("ab" + "0" * 62, result)
            print("unreachable")
            """
        )
        env = dict(os.environ, **{CHAOS_ENV: "crash-put:1"})
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == CACHE_CRASH_EXIT
        assert "unreachable" not in proc.stdout
        cache = DiskCache(tmp_path)
        report = cache.verify()
        assert report.entries == 0, "no partial entry was published"
        assert report.ok
        # the stranded temp file is gone (dead pid -> swept on init)
        assert cache.stats.tmp_swept == 1
        assert list(tmp_path.glob("**/*.tmp-*")) == []


class TestLayeredUnderMemory:
    def test_memory_then_disk_then_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = ResultCache(capacity=4, disk=disk)
        cache.put("k1", _result())
        assert disk.stats.stores == 1
        # memory hit: disk untouched
        assert cache.get("k1").cached
        assert disk.stats.hits == 0
        # new instance sharing the directory: disk hit, promoted
        other = ResultCache(capacity=4, disk=DiskCache(tmp_path))
        promoted = other.get("k1")
        assert promoted is not None and promoted.cached
        assert other.get("k1") is not None  # now a memory hit
        assert other.disk.stats.hits == 1

    def test_capacity_zero_is_disk_only(self, tmp_path):
        cache = ResultCache(capacity=0, disk=DiskCache(tmp_path))
        cache.put("k2", _result())
        assert cache.get("k2") is not None  # served from disk
        assert cache.disk.stats.hits == 1

    def test_service_warm_restart_via_disk(self, tmp_path):
        """Two service lifetimes sharing one cache directory."""
        job = _job()
        with ServiceClient(
            backend="inprocess", cache_dir=str(tmp_path)
        ) as client:
            first = client.wait(client.submit(job))
        assert first.ok and not first.cached
        with ServiceClient(
            backend="inprocess", cache_dir=str(tmp_path)
        ) as client:
            second = client.wait(client.submit(_job()))
            stats = client.stats
        assert second.ok and second.cached
        assert second.source == first.source
        assert stats.disk is not None and stats.disk.hits == 1
