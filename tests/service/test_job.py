"""The Job/JobResult wire model: serialization, fingerprints, keys."""

import pytest

from repro._version import __version__
from repro.frontend.errors import FrontendError
from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions
from repro.service.job import (
    COMPLETED,
    FAILED,
    Job,
    JobError,
    JobResult,
    job_failure,
    options_from_dict,
    options_to_dict,
)
from repro.workloads.programs import SOURCES


def test_options_round_trip_all_fields():
    options = DriverOptions(
        apply_all=True,
        max_applications=7,
        max_rollbacks=3,
        deadline_seconds=1.5,
        max_match_attempts=1000,
    )
    rebuilt = options_from_dict(options_to_dict(options))
    assert rebuilt == options


def test_point_filter_cannot_serialize():
    options = DriverOptions(point_filter=lambda point: True)
    with pytest.raises(JobError):
        options_to_dict(options)


def test_unknown_option_field_rejected():
    with pytest.raises(JobError):
        options_from_dict({"no_such_knob": 1})


def test_job_round_trip_preserves_identity():
    job = Job.from_source(
        SOURCES["fft"], ("CTP", "DCE"),
        DriverOptions(apply_all=True, max_rollbacks=2),
        deadline_seconds=9.0,
    )
    rebuilt = Job.from_dict(job.to_dict())
    assert rebuilt.source == job.source
    assert rebuilt.opt_names == job.opt_names
    assert rebuilt.options == job.options
    assert rebuilt.fingerprint == job.fingerprint
    assert rebuilt.deadline_seconds == 9.0
    assert rebuilt.cache_key() == job.cache_key()


def test_from_program_and_from_source_agree():
    program = parse_program(SOURCES["newton"])
    by_program = Job.from_program(program, ("CTP",))
    by_source = Job.from_source(by_program.source, ("CTP",))
    assert by_program.fingerprint == by_source.fingerprint
    assert by_program.cache_key() == by_source.cache_key()


def test_fingerprint_is_canonical_program_hash():
    job = Job.from_source(SOURCES["poly"], ("DCE",))
    assert job.fingerprint == parse_program(SOURCES["poly"]).fingerprint()


def test_malformed_source_rejected_at_admission():
    with pytest.raises(FrontendError):
        Job.from_source("", ("CTP",))
    with pytest.raises(FrontendError):
        Job.from_source("this is not fortran", ("CTP",))


def test_cache_key_sensitivity():
    base = Job.from_source(SOURCES["fft"], ("CTP", "DCE"))
    assert base.cache_key() == Job.from_source(
        SOURCES["fft"], ("CTP", "DCE")
    ).cache_key()
    # program, sequence (including order), and options all matter
    assert base.cache_key() != Job.from_source(
        SOURCES["newton"], ("CTP", "DCE")
    ).cache_key()
    assert base.cache_key() != Job.from_source(
        SOURCES["fft"], ("DCE", "CTP")
    ).cache_key()
    assert base.cache_key() != Job.from_source(
        SOURCES["fft"], ("CTP", "DCE"), DriverOptions(apply_all=False)
    ).cache_key()


def test_cache_key_embeds_package_version(monkeypatch):
    job = Job.from_source(SOURCES["fft"], ("CTP",))
    before = job.cache_key()
    monkeypatch.setattr("repro.service.job.__version__", "0.0.0-test")
    assert job.cache_key() != before
    assert __version__ != "0.0.0-test"


def test_result_round_trip_with_failure():
    result = JobResult(
        job_id=4,
        status=FAILED,
        fingerprint="abc",
        failure=job_failure("worker", "WorkerCrashed", "died (exit 23)"),
        worker="pid:123",
    )
    rebuilt = JobResult.from_dict(result.to_dict())
    assert rebuilt.status == FAILED
    assert not rebuilt.ok
    assert rebuilt.failure is not None
    assert rebuilt.failure.error_type == "WorkerCrashed"
    assert rebuilt.failure.restored == "isolation"
    assert rebuilt.worker == "pid:123"


def test_result_program_parses_back():
    result = JobResult(
        job_id=1, status=COMPLETED, source=SOURCES["poly"]
    )
    assert result.program().fingerprint() == parse_program(
        SOURCES["poly"]
    ).fingerprint()
    with pytest.raises(JobError):
        JobResult(job_id=2, status=FAILED).program()


def test_experiment_job_keys_on_payload():
    one = Job.experiment("ordering")
    two = Job.experiment("quality")
    assert one.fingerprint != two.fingerprint
    assert one.cache_key() != two.cache_key()
    selected = Job.experiment("ordering")
    selected.payload["workloads"] = ["fft"]
    assert selected.cache_key() != one.cache_key()
