"""The retrying network client, against scripted fake servers.

Every failure family the client must survive gets a deterministic
reproduction: connection refused, mid-read disconnect, queue-full
rejection — each retried under the capped, seeded-jitter backoff —
and a poisoned request, which must fail once and never be retried.
"""

import random
import socket
import threading

import pytest

from repro.genesis.driver import DriverOptions
from repro.service.job import Job, JobResult, job_failure
from repro.service.net.client import (
    NetworkServiceClient,
    RequestError,
    RetryPolicy,
    ServiceUnavailable,
)
from repro.service.net.protocol import decode_line, encode_line
from repro.workloads.programs import SOURCES


def _job():
    return Job.from_source(
        SOURCES["poly"], ("CTP", "DCE"), DriverOptions(apply_all=True)
    )


def _completed(job, job_id=1):
    return JobResult(
        job_id=job_id,
        status="completed",
        fingerprint=job.fingerprint,
        source="optimized\n",
        applications=1,
    )


def _rejected(job, error_type="QueueFull"):
    return JobResult(
        job_id=1,
        status="rejected",
        fingerprint=job.fingerprint,
        failure=job_failure("admission", error_type, "queue is full"),
    )


class FakeServer:
    """A scripted JSON-lines endpoint: one handler per connection."""

    def __init__(self, *handlers):
        self.handlers = list(handlers)
        self.connections = 0
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for handler in self.handlers:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                handler(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        self.sock.close()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def _read_request(conn) -> dict:
    data = b""
    while not data.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            raise ConnectionError("client went away")
        data += chunk
    return decode_line(data)


def _answer_hello(conn) -> dict:
    """Consume the hello request and answer it; returns the request."""
    request = _read_request(conn)
    assert request["cmd"] == "hello"
    conn.sendall(encode_line({
        "id": request["id"], "ok": True, "queue_limit": 4,
        "max_pending": 4,
    }))
    return request


def _client(port, attempts=4, **kwargs):
    slept = []
    policy = RetryPolicy(
        attempts=attempts, base_delay=0.01, max_delay=0.05,
        seed=99, sleep=slept.append,
    )
    client = NetworkServiceClient(
        "127.0.0.1", port, connect_timeout=1.0, request_timeout=5.0,
        retry=policy, **kwargs,
    )
    client.slept = slept
    return client


class TestBackoffPolicy:
    def test_delays_monotone_below_cap_seeded(self):
        policy = RetryPolicy(
            attempts=10, base_delay=0.05, multiplier=2.0,
            max_delay=1000.0, jitter=0.25, seed=42,
        )
        rng = random.Random(policy.seed)
        delays = [policy.delay(n, rng) for n in range(8)]
        assert delays == sorted(delays), "seeded backoff must be monotone"
        assert all(d > 0 for d in delays)

    def test_delay_never_exceeds_cap_plus_jitter(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=0.2, jitter=0.25)
        rng = random.Random(7)
        for attempt in range(20):
            assert policy.delay(attempt, rng) <= 0.2 * 1.25

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(seed=5)
        a = [policy.delay(n, random.Random(5)) for n in range(5)]
        b = [policy.delay(n, random.Random(5)) for n in range(5)]
        assert a == b


class TestConnectionRefused:
    def test_refused_exhausts_budget_then_raises(self):
        # bind-and-close guarantees nothing listens on the port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = _client(port, attempts=4)
        with pytest.raises(ServiceUnavailable) as info:
            client.request({"cmd": "ping"})
        assert client.attempts == 4, "every budgeted attempt was made"
        assert len(client.delays) == 3, "no sleep after the last attempt"
        assert client.delays == sorted(client.delays)
        assert client.slept == client.delays, "delays were actually slept"
        assert "4 attempt(s)" in str(info.value)


class TestMidReadDisconnect:
    def test_truncated_response_retried_to_success(self):
        job = _job()
        done = _completed(job)

        def sever_mid_response(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            line = encode_line({
                "id": request["id"], "result": done.to_dict(),
            })
            conn.sendall(line[: len(line) // 2])  # half, no newline
            conn.shutdown(socket.SHUT_RDWR)

        def serve_properly(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"], "result": done.to_dict(),
            }))

        server = FakeServer(sever_mid_response, serve_properly)
        client = _client(server.port)
        result = client._optimize_job(job)
        assert result.status == "completed"
        assert result.source == "optimized\n"
        assert server.connections == 2, "client reconnected after the tear"
        assert len(client.delays) == 1, "one backoff pause between tries"
        server.close()

    def test_abrupt_close_before_any_byte_retried(self):
        job = _job()
        done = _completed(job)

        def slam_shut(conn):
            _answer_hello(conn)
            _read_request(conn)
            conn.shutdown(socket.SHUT_RDWR)  # EOF instead of a response

        def serve_properly(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"], "result": done.to_dict(),
            }))

        server = FakeServer(slam_shut, serve_properly)
        client = _client(server.port)
        assert client._optimize_job(job).status == "completed"
        server.close()


class TestQueueFullRejection:
    def test_queue_full_result_retried_with_backoff(self):
        job = _job()

        # one connection: first submit rejected QueueFull, second lands
        def scripted(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"],
                "result": _rejected(job).to_dict(),
            }))
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"],
                "result": _completed(job).to_dict(),
            }))

        server = FakeServer(scripted)
        client = _client(server.port)
        result = client._optimize_job(job)
        assert result.status == "completed"
        assert len(client.delays) == 1, "rejection was backed off once"
        server.close()

    def test_rejections_exhaust_budget(self):
        job = _job()

        def always_reject(conn):
            _answer_hello(conn)
            try:
                while True:
                    request = _read_request(conn)
                    conn.sendall(encode_line({
                        "id": request["id"],
                        "result": _rejected(job).to_dict(),
                    }))
            except ConnectionError:
                pass

        server = FakeServer(always_reject)
        client = _client(server.port, attempts=3)
        with pytest.raises(ServiceUnavailable) as info:
            client._optimize_job(job)
        assert "QueueFull" in str(info.value)
        server.close()


class TestPoisonedRequest:
    def test_terminal_error_never_retried(self):
        def poison(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"],
                "error": "unknown optimization(s): ZZZ",
                "error_type": "JobError",
                "retryable": False,
            }))
            # if the client retried, a second request would arrive and
            # the handler would answer it — the counters would show it
            try:
                request = _read_request(conn)
                conn.sendall(encode_line({
                    "id": request["id"],
                    "error": "unknown optimization(s): ZZZ",
                    "error_type": "JobError",
                    "retryable": False,
                }))
            except ConnectionError:
                pass

        server = FakeServer(poison)
        client = _client(server.port)
        with pytest.raises(RequestError) as info:
            client.request({"cmd": "submit", "source": "bogus"})
        assert info.value.error_type == "JobError"
        assert client.delays == [], "poisoned requests are never retried"
        assert client.slept == []
        assert client.attempts == 1
        server.close()

    def test_retryable_wire_error_is_retried(self):
        job = _job()

        def draining_then_fine(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"],
                "error": "server is draining",
                "error_type": "ServerDraining",
                "retryable": True,
            }))
            try:
                request = _read_request(conn)
                conn.sendall(encode_line({
                    "id": request["id"],
                    "result": _completed(job).to_dict(),
                }))
            except ConnectionError:
                pass

        def serve_properly(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({
                "id": request["id"],
                "result": _completed(job).to_dict(),
            }))

        server = FakeServer(draining_then_fine, serve_properly)
        client = _client(server.port)
        result = client._optimize_job(job)
        assert result.status == "completed"
        assert len(client.delays) == 1
        server.close()


class TestEventSkipping:
    def test_events_and_heartbeats_skipped_while_waiting(self):
        job = _job()

        def chatty(conn):
            _answer_hello(conn)
            request = _read_request(conn)
            conn.sendall(encode_line({"event": "job", "job_id": 1,
                                      "status": "running"}))
            conn.sendall(encode_line({"event": "heartbeat", "t": 0}))
            conn.sendall(encode_line({
                "id": request["id"],
                "result": _completed(job).to_dict(),
            }))

        server = FakeServer(chatty)
        client = _client(server.port)
        result = client._optimize_job(job)
        assert result.status == "completed"
        assert client.attempts == 1
        server.close()
