"""The asyncio server: dispatch rules, real TCP sessions, drains.

Unit tests drive ``_dispatch`` directly (no sockets); integration
tests run real ``genesis serve --listen`` subprocesses through the
``server_factory`` fixture and abuse them the way an operator's
infrastructure would: concurrent clients, SIGTERM mid-fleet, severed
connections, warm restarts over a shared cache directory.
"""

import json

import pytest

from repro.genesis.driver import DriverOptions
from repro.service.job import Job
from repro.service.net.client import NetworkServiceClient, RetryPolicy
from repro.service.net.server import (
    OptimizationServer,
    ServeConfig,
    _Connection,
    _parse_hostport,
)
from repro.service.scheduler import ServiceError
from repro.workloads.programs import SOURCES


def _job(name="poly", opts=("CTP", "DCE")):
    return Job.from_source(
        SOURCES[name], opts, DriverOptions(apply_all=True)
    )


class _Sink:
    """Collects what the server would have written to one connection."""

    def __init__(self):
        self.conn = _Connection(writer=None)
        self.conn.send = self._send  # bypass the outbox/writer task
        self.sent = []

    def _send(self, payload, truncate=False):
        self.sent.append(payload)


def _server(**overrides):
    settings = dict(backend="inprocess", max_workers=1)
    settings.update(overrides)
    return OptimizationServer(
        ServeConfig(**settings), log=lambda message: None
    )


class TestDispatchUnit:
    def test_hello_reports_identity_and_limits(self):
        server = _server(queue_limit=7, max_pending=3)
        sink = _Sink()
        server._dispatch(sink.conn, {"cmd": "hello", "id": 1})
        [reply] = sink.sent
        assert reply["id"] == 1
        assert reply["queue_limit"] == 7
        assert reply["max_pending"] == 3
        assert reply["backend"] == "inprocess"
        assert reply["draining"] is False

    def test_submit_resolves_inline_with_inprocess_backend(self):
        server = _server()
        sink = _Sink()
        server._dispatch(sink.conn, {
            "cmd": "submit", "id": 2, "job": _job().to_dict(),
        })
        [reply] = sink.sent
        assert reply["id"] == 2
        assert reply["result"]["status"] == "completed"

    def test_draining_submit_is_retryable_rejection(self):
        server = _server()
        server._draining = True
        sink = _Sink()
        server._dispatch(sink.conn, {
            "cmd": "submit", "id": 3, "job": _job().to_dict(),
        })
        [reply] = sink.sent
        assert reply["error_type"] == "ServerDraining"
        assert reply["retryable"] is True

    def test_backpressure_over_max_pending(self):
        server = _server(max_pending=0)
        sink = _Sink()
        server._dispatch(sink.conn, {
            "cmd": "submit", "id": 4, "job": _job().to_dict(),
        })
        [reply] = sink.sent
        assert reply["error_type"] == "Backpressure"
        assert reply["retryable"] is True

    def test_malformed_job_is_terminal_error(self):
        server = _server()
        sink = _Sink()
        server._dispatch(sink.conn, {
            "cmd": "submit", "id": 5, "opts": "ZZZ",
            "source": SOURCES["poly"],
        })
        [reply] = sink.sent
        assert "unknown optimization" in reply["error"]
        assert reply["retryable"] is False

    def test_unknown_command_rejected(self):
        server = _server()
        sink = _Sink()
        server._dispatch(sink.conn, {"cmd": "frobnicate", "id": 6})
        [reply] = sink.sent
        assert "unknown command" in reply["error"]

    def test_wait_for_unknown_job_errors(self):
        server = _server()
        sink = _Sink()
        server._dispatch(sink.conn, {"cmd": "wait", "id": 7,
                                     "job_id": 999})
        [reply] = sink.sent
        assert reply["error_type"] == "ServiceError"

    def test_events_subscription_streams_transitions(self):
        server = _server()
        sink = _Sink()
        server._dispatch(sink.conn, {
            "cmd": "submit", "id": 8, "job": _job().to_dict(),
            "events": True,
        })
        kinds = [m.get("event") for m in sink.sent]
        assert "job" in kinds, "status transitions were streamed"
        statuses = [
            m["status"] for m in sink.sent if m.get("event") == "job"
        ]
        assert statuses[-1] == "completed"
        # and the result itself still resolved the request
        assert sink.sent[-1].get("result", {}).get("status") == "completed"


class TestHostPortParsing:
    def test_forms(self):
        assert _parse_hostport("0.0.0.0:99") == ("0.0.0.0", 99)
        assert _parse_hostport(":99") == ("127.0.0.1", 99)
        assert _parse_hostport("99") == ("127.0.0.1", 99)

    def test_bad_port_raises_service_error(self):
        with pytest.raises(ServiceError):
            _parse_hostport("host:not-a-port")


class TestRealServer:
    def test_end_to_end_with_cache_hits(self, server_factory):
        server = server_factory("--backend", "inprocess")
        with NetworkServiceClient("127.0.0.1", server.port) as client:
            first = client.optimize_source(SOURCES["poly"], ("CTP", "DCE"))
            second = client.optimize_source(SOURCES["poly"], ("CTP", "DCE"))
        assert first.status == "completed" and not first.cached
        assert second.cached and second.source == first.source

    def test_concurrent_clients_share_one_service(self, server_factory):
        server = server_factory("--backend", "inprocess")
        with NetworkServiceClient("127.0.0.1", server.port) as one, \
                NetworkServiceClient("127.0.0.1", server.port) as two:
            a = one.optimize_source(SOURCES["fft"], ("CTP", "DCE"))
            b = two.optimize_source(SOURCES["fft"], ("CTP", "DCE"))
        assert a.status == b.status == "completed"
        assert b.cached, "second client hit the first client's result"

    def test_batch_in_submission_order(self, server_factory):
        server = server_factory("--backend", "inprocess")
        jobs = [_job("poly"), _job("fft"), _job("poly", ("CFO", "DCE"))]
        with NetworkServiceClient("127.0.0.1", server.port) as client:
            results = client.run_batch(jobs)
        assert [r.fingerprint for r in results] == [
            j.fingerprint for j in jobs
        ]
        assert all(r.status == "completed" for r in results)

    def test_chaos_disconnect_is_survived(self, server_factory):
        """Severed-mid-response connections only cost retries."""
        server = server_factory(
            "--backend", "inprocess",
            "--chaos-disconnect", "0.5", "--chaos-seed", "11",
        )
        client = NetworkServiceClient(
            "127.0.0.1", server.port,
            retry=RetryPolicy(
                attempts=8, base_delay=0.01, max_delay=0.1, seed=1
            ),
        )
        with client:
            results = [
                client.optimize_source(SOURCES[name], ("CTP", "DCE"))
                for name in ("poly", "fft", "poly")
            ]
        assert all(r.status == "completed" for r in results)
        assert client.attempts > 3, "some responses were severed"

    def test_shutdown_command_drains_exit_zero(self, server_factory):
        server = server_factory("--backend", "inprocess")
        with NetworkServiceClient("127.0.0.1", server.port) as client:
            client.optimize_source(SOURCES["poly"], ("CTP", "DCE"))
            client.shutdown_server()
        assert server.proc.wait(timeout=30) == 0
        assert "draining" in server.log_text()


class TestWarmRestart:
    def test_sigterm_then_restart_serves_from_disk(
        self, server_factory, tmp_path
    ):
        """The satellite-4 scenario: batch, drain, restart, re-batch.

        The second lifetime must serve ~100% from the persistent tier
        with byte-identical results."""
        cache_dir = str(tmp_path / "shared-cache")
        jobs = [
            _job("poly", ("CTP", "DCE")),
            _job("fft", ("CTP", "CFO", "DCE")),
            _job("poly", ("CFO", "DCE")),
            _job("fft", ("CTP", "DCE")),
        ]
        first_server = server_factory(
            "--backend", "inprocess", "--cache-dir", cache_dir
        )
        with NetworkServiceClient(
            "127.0.0.1", first_server.port
        ) as client:
            cold = client.run_batch(jobs)
        assert first_server.sigterm() == 0, "SIGTERM drain exits 0"
        assert all(r.status == "completed" for r in cold)

        second_server = server_factory(
            "--backend", "inprocess", "--cache-dir", cache_dir
        )
        with NetworkServiceClient(
            "127.0.0.1", second_server.port
        ) as client:
            warm = client.run_batch(jobs)
            remote = client.stats
        disk = remote["disk"]
        assert all(r.status == "completed" for r in warm)
        assert [r.source for r in warm] == [r.source for r in cold], (
            "warm results must be byte-identical to the cold run"
        )
        assert all(r.cached for r in warm)
        served = disk["hits"] + disk["misses"]
        assert served > 0 and disk["hits"] / served >= 0.95, (
            f"warm restart must be >=95% disk-served, got {disk}"
        )

    def test_sigterm_with_no_traffic_exits_zero(self, server_factory):
        server = server_factory("--backend", "inprocess")
        assert server.sigterm() == 0
