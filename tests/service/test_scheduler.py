"""The scheduler: admission, caching, coalescing, deadlines, shutdown."""

import pytest

from repro.genesis.driver import DriverOptions
from repro.service import (
    COMPLETED,
    EXPIRED,
    FAILED,
    OptimizationService,
    REJECTED,
    ServiceConfig,
    ServiceError,
)
from repro.service.backends import WorkerHandle, execute_job
from repro.service.job import Job
from repro.workloads.programs import SOURCES


def _job(name="fft", opts=("CTP", "DCE"), **extra):
    return Job.from_source(SOURCES[name], opts, **extra)


def _service(**overrides):
    settings = {"backend": "inprocess"}
    settings.update(overrides)
    return OptimizationService(ServiceConfig(**settings))


class _ManualHandle(WorkerHandle):
    """A worker that completes only when the test releases it."""

    def __init__(self, job):
        self.job = job
        self.released = False
        self.worker = "manual"

    def poll(self):
        if not self.released:
            return None
        return execute_job(self.job, worker=self.worker)

    @property
    def crashed(self):
        return False

    def kill(self):
        pass


class _ManualBackend:
    """Deterministic asynchrony: jobs finish when the test says so."""

    name = "manual"

    def __init__(self, max_workers=2):
        self.max_workers = max_workers
        self.handles = []
        #: once set, handles spawned later complete immediately
        self.auto_release = False

    def spawn(self, job):
        handle = _ManualHandle(job)
        handle.released = self.auto_release
        self.handles.append(handle)
        return handle

    def close(self):
        pass


def test_submit_wait_completes():
    with _service() as service:
        result = service.wait(service.submit(_job()))
        assert result.ok and result.status == COMPLETED
        assert result.applications > 0
        assert result.source is not None
        assert result.fingerprint and result.cache_key
        assert service.stats.completed == 1


def test_duplicate_submission_served_from_cache():
    with _service() as service:
        first = service.wait(service.submit(_job()))
        second = service.wait(service.submit(_job()))
        assert second.ok and second.cached
        assert not first.cached
        assert second.source == first.source
        assert second.job_id != first.job_id
        assert service.stats.cache_served == 1
        assert service.stats.cache.hits == 1


def test_single_flight_coalesces_concurrent_duplicates():
    backend = _ManualBackend(max_workers=2)
    service = OptimizationService(ServiceConfig(), backend=backend)
    with service:
        leader = service.submit(_job())
        follower = service.submit(_job())
        other = service.submit(_job("newton"))
        # one execution for the duplicate pair, one for the other job
        assert len(backend.handles) == 2
        assert service.stats.coalesced == 1
        for handle in backend.handles:
            handle.released = True
        service.drain(timeout=10.0)
        lead, follow = service.result(leader), service.result(follower)
        assert lead.ok and follow.ok
        assert follow.coalesced and not lead.coalesced
        assert follow.source == lead.source
        assert follow.job_id == follower
        assert service.result(other).ok


def test_coalesced_follower_keeps_its_own_deadline():
    import time

    backend = _ManualBackend(max_workers=1)
    service = OptimizationService(ServiceConfig(), backend=backend)
    with service:
        leader = service.submit(_job())
        follower = service.submit(_job(deadline_seconds=0.0))
        assert service.stats.coalesced == 1
        time.sleep(0.01)
        service.pump()
        expired = service.result(follower)
        assert expired is not None and expired.status == EXPIRED
        assert expired.failure.error_type == "JobExpired"
        assert expired.coalesced
        # the leader (no deadline of its own) runs on unaffected
        assert service.result(leader) is None
        backend.handles[0].released = True
        service.drain(timeout=10.0)
        assert service.result(leader).ok
        assert service.stats.expired == 1


def test_queue_limit_rejects_with_structured_failure():
    backend = _ManualBackend(max_workers=1)
    service = OptimizationService(
        ServiceConfig(queue_limit=1), backend=backend
    )
    with service:
        service.submit(_job("fft"))       # dispatched, held by the test
        service.submit(_job("newton"))    # waits in the queue
        rejected = service.result(service.submit(_job("poly")))
        assert rejected.status == REJECTED
        assert rejected.failure.error_type == "QueueFull"
        assert rejected.failure.restored == "isolation"
        assert service.stats.rejected == 1
        backend.auto_release = True
        for handle in backend.handles:
            handle.released = True
        service.drain(timeout=10.0)


def test_zero_deadline_job_expires_before_dispatch():
    with _service() as service:
        result = service.wait(
            service.submit(_job(deadline_seconds=0.0))
        )
        assert result.status == EXPIRED
        assert result.failure.error_type == "JobExpired"
        assert service.stats.expired == 1


def test_zero_driver_budgets_complete_vacuously():
    with _service() as service:
        spent = service.wait(service.submit(_job(
            opts=("CTP", "DCE"),
            options=DriverOptions(apply_all=True, deadline_seconds=0.0),
        )))
        assert spent.ok and spent.applications == 0
        assert set(spent.stopped.values()) == {"deadline"}
        no_rollbacks = service.wait(service.submit(_job(
            opts=("CTP",),
            options=DriverOptions(apply_all=True, max_rollbacks=0),
        )))
        assert no_rollbacks.ok and no_rollbacks.applications == 0
        assert no_rollbacks.stopped["CTP"] == "rollback-budget"


def test_empty_program_completes_with_zero_applications():
    with _service() as service:
        job = Job.from_source("program empty\nend\n", ("CTP", "DCE"))
        result = service.wait(service.submit(job))
        assert result.ok and result.applications == 0
        assert result.source == "program empty\nend\n"


def test_crash_looping_fingerprint_is_quarantined():
    service = _service(crash_quarantine=2)
    with service:
        for _ in range(2):
            result = service.wait(service.submit(_job(chaos="exit")))
            assert result.status == FAILED
            assert result.failure.error_type == "WorkerCrashed"
        rejected = service.wait(service.submit(_job(chaos="exit")))
        assert rejected.status == REJECTED
        assert rejected.failure.error_type == "FingerprintQuarantined"
        # a different request is unaffected by the quarantine
        assert service.wait(service.submit(_job("newton"))).ok


def test_close_fails_unresolved_jobs():
    backend = _ManualBackend(max_workers=1)
    service = OptimizationService(ServiceConfig(), backend=backend)
    running = service.submit(_job("fft"))
    queued = service.submit(_job("newton"))
    service.close()
    for job_id in (running, queued):
        result = service.result(job_id)
        assert result.status == FAILED
        assert result.failure.error_type == "ServiceClosed"
    with pytest.raises(ServiceError):
        service.submit(_job())
    service.close()  # idempotent


def test_unknown_job_id_raises():
    with _service() as service:
        with pytest.raises(ServiceError):
            service.result(999)
        with pytest.raises(ServiceError):
            service.wait(999)


def test_unknown_backend_rejected():
    with pytest.raises(ServiceError):
        OptimizationService(ServiceConfig(backend="threads"))


def test_batch_results_in_submission_order():
    from repro.service import ServiceClient

    names = ["poly", "fft", "newton", "fft"]
    with ServiceClient(backend="inprocess") as client:
        results = client.run_batch(
            [_job(name) for name in names]
        )
        assert [r.ok for r in results] == [True] * 4
        assert results[3].cached
        assert results[1].source == results[3].source
        by_name = {n: r.source for n, r in zip(names, results)}
        assert by_name["poly"] != by_name["fft"]
