"""Admission-pipeline tests.

The load-bearing ones are the broken-fixture refusals: the
deliberately unsound specifications from ``repro.verify.fixtures``
must be rejected by the differential-oracle gate and leave a shrunk,
replayable counterexample on disk — an admission pipeline is only
trustworthy if it demonstrably refuses known miscompiles.
"""

from __future__ import annotations

import pytest

from repro.ir.builder import IRBuilder
from repro.synth.admit import AdmissionPipeline
from repro.synth.generalize import ladder
from repro.synth.mine import diff_pair
from repro.verify.fixtures import BROKEN_SPECS


def _window(before_stmts, after_stmts):
    def build(statements):
        builder = IRBuilder()
        builder.assign("sink", 0)
        for target, left, symbol, right in statements:
            if symbol is None:
                builder.assign(target, left)
            else:
                builder.binary(target, left, symbol, right)
        builder.write("sink")
        return builder.build()

    return diff_pair(build(before_stmts), build(after_stmts), origin="unit")


@pytest.fixture(scope="module")
def pipeline():
    return AdmissionPipeline(network_gate=False)


# ----------------------------------------------------------------------
# deliberately broken fixtures are refused with evidence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BROKEN_SPECS))
def test_broken_fixture_is_refused_with_counterexample(name, tmp_path):
    pipeline = AdmissionPipeline(network_gate=False, out_dir=tmp_path)
    report = pipeline.evaluate_source(name, BROKEN_SPECS[name])
    assert not report.admitted
    assert report.rejected_gate == "oracle", report.summary()
    assert report.counterexample is not None
    repro_file = tmp_path / f"reject_{name}.f"
    assert repro_file.exists()
    text = repro_file.read_text()
    assert "! gate: oracle" in text
    assert f"! opts: {name}" in text
    assert (tmp_path / f"reject_{name}.gospel").read_text().strip() == (
        BROKEN_SPECS[name].strip()
    )


def test_candidate_counterexample_replays_divergent(tmp_path):
    """A refuted candidate is not in any catalog, so replay must pick
    up its GOSpeL source from the sibling ``reject_<name>.gospel``."""
    from repro.verify.fuzz import replay_repro

    pipeline = AdmissionPipeline(network_gate=False, out_dir=tmp_path)
    window = _window([("a", "x", "-", "y")], [("a", 0, None, None)])
    shape = ladder(window)[0]
    report = pipeline.evaluate(shape)
    assert not report.admitted
    assert report.rejected_gate == "oracle"
    repro_file = tmp_path / f"reject_{shape.name}.f"
    assert repro_file.exists()
    oracle_report, applied = replay_repro(repro_file)
    assert applied >= 1
    assert not oracle_report.equivalent


@pytest.mark.parametrize("name", sorted(BROKEN_SPECS))
def test_broken_fixture_counterexample_is_shrunk(name, tmp_path):
    pipeline = AdmissionPipeline(network_gate=False, out_dir=tmp_path)
    report = pipeline.evaluate_source(name, BROKEN_SPECS[name])
    assert report.shrunk_statements is not None
    # the shrinker must do real work: the corpus programs are ~12
    # statements plus loop scaffolding, the kernel of either broken
    # spec's miscompile is a handful
    assert report.shrunk_statements <= 8, report.summary()


# ----------------------------------------------------------------------
# unsound ladder candidates are refused at the oracle
# ----------------------------------------------------------------------
def test_div_self_rewrite_is_refused(pipeline):
    window = _window([("a", "x", "/", "x")], [("a", 1, None, None)])
    candidates = ladder(window)
    assert candidates
    for candidate in candidates:
        report = pipeline.evaluate(candidate)
        assert not report.admitted, report.summary()
        assert report.rejected_gate == "oracle"


def test_mod_one_rewrite_is_refused(pipeline):
    window = _window([("a", "x", "mod", 1)], [("a", 0, None, None)])
    for candidate in ladder(window):
        report = pipeline.evaluate(candidate)
        assert not report.admitted, report.summary()
        assert report.rejected_gate == "oracle"


# ----------------------------------------------------------------------
# sound candidates are admitted at their most general sound rung
# ----------------------------------------------------------------------
def test_sub_self_rewrite_is_admitted(pipeline):
    window = _window([("a", "x", "-", "x")], [("a", 0, None, None)])
    outcomes = {}
    for candidate in ladder(window):
        report = pipeline.evaluate(candidate)
        outcomes[candidate.rung_label] = report
    # x := y - y -> x := 0 is only sound when the operands are equal
    assert any(report.admitted for report in outcomes.values())
    admitted = [
        label for label, report in outcomes.items() if report.admitted
    ]
    assert "equal" in admitted or "pinned" in admitted
    if "shape" in outcomes:
        assert not outcomes["shape"].admitted


def test_admitted_report_counts_applications(pipeline):
    window = _window([("a", "x", "*", 0)], [("a", 0, None, None)])
    reports = [pipeline.evaluate(c) for c in ladder(window)]
    admitted = [r for r in reports if r.admitted]
    assert admitted
    assert all(r.applications >= 1 for r in admitted)
    assert all(
        any(g.gate == "oracle" and g.ok for g in r.gates)
        for r in admitted
    )


# ----------------------------------------------------------------------
# early gates
# ----------------------------------------------------------------------
def test_unparsable_source_rejected_at_sema(pipeline):
    report = pipeline.evaluate_source("BAD", "this is not gospel")
    assert not report.admitted
    assert report.rejected_gate == "sema"


def test_never_firing_spec_rejected_at_coverage(pipeline):
    source = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == sub AND Si.opr_2 == 77 AND Si.opr_3 == 77;
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, 0);
  modify(Si.opr_3, none);
"""
    report = pipeline.evaluate_source("NEVER", source)
    assert not report.admitted
    assert report.rejected_gate == "coverage"


def test_network_gate_runs_when_enabled():
    pipeline = AdmissionPipeline(network_gate=True)
    window = _window([("a", "x", "-", "x")], [("a", 0, None, None)])
    admitted = [
        report
        for report in (pipeline.evaluate(c) for c in ladder(window))
        if report.admitted
    ]
    assert admitted
    for report in admitted:
        assert any(g.gate == "network" and g.ok for g in report.gates)
