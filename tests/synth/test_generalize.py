"""Abstraction-ladder tests: rung structure, naming, probes."""

from __future__ import annotations

from repro.genesis.generator import generate_optimizer
from repro.ir.builder import IRBuilder
from repro.ir.interp import run_program
from repro.synth.generalize import ladder, window_name
from repro.synth.mine import diff_pair


def _window(before_stmts, after_stmts):
    def build(statements):
        builder = IRBuilder()
        builder.assign("sink", 0)
        for target, left, symbol, right in statements:
            if symbol is None:
                builder.assign(target, left)
            else:
                builder.binary(target, left, symbol, right)
        builder.write("sink")
        return builder.build()

    return diff_pair(build(before_stmts), build(after_stmts), origin="unit")


SUB_SELF = _window([("a", "x", "-", "x")], [("a", 0, None, None)])
MUL_ZERO = _window([("a", "x", "*", 0)], [("a", 0, None, None)])


class TestWindowName:
    def test_variable_lettering(self):
        assert window_name(SUB_SELF) == "INF_SUB_XX"

    def test_constants_inline(self):
        assert window_name(MUL_ZERO) == "INF_MUL_X0"

    def test_deletion_prefix(self):
        window = _window([("a", "a", None, None)], [])
        assert window_name(window).startswith("INF_DEL_ASSIGN")


class TestLadder:
    def test_rungs_are_most_general_first(self):
        candidates = ladder(SUB_SELF)
        assert len(candidates) >= 2
        labels = [c.rung_label for c in candidates]
        assert labels == sorted(
            labels,
            key=["shape", "equal", "pinned", "guarded"].index,
        )
        assert [c.rung for c in candidates] == list(range(len(candidates)))

    def test_equal_rung_requires_operand_equality(self):
        by_label = {c.rung_label: c for c in ladder(SUB_SELF)}
        assert "equal" in by_label
        assert "Si.opr_2 == Si.opr_3" in by_label["equal"].source
        if "shape" in by_label:
            assert (
                "Si.opr_2 == Si.opr_3" not in by_label["shape"].source
            )

    def test_pinned_rung_pins_constants(self):
        by_label = {c.rung_label: c for c in ladder(MUL_ZERO)}
        assert "pinned" in by_label
        assert "Si.opr_3 == 0" in by_label["pinned"].source

    def test_delete_window_gets_guarded_rung(self):
        window = _window([("a", "a", None, None)], [])
        by_label = {c.rung_label: c for c in ladder(window)}
        assert "guarded" in by_label
        assert "no Sj" in by_label["guarded"].source
        assert "flow_dep(Si, Sj)" in by_label["guarded"].source

    def test_identical_rungs_collapse(self):
        candidates = ladder(SUB_SELF)
        sources = [c.source for c in candidates]
        assert len(sources) == len(set(sources))

    def test_every_rung_compiles(self):
        for window in (SUB_SELF, MUL_ZERO):
            for candidate in ladder(window):
                optimizer = generate_optimizer(
                    candidate.source, name=candidate.name
                )
                assert optimizer is not None

    def test_array_result_window_is_inexpressible(self):
        before = IRBuilder()
        with before.loop("i", 1, 3):
            before.binary(before.arr("p", "i"), "x", "-", "x")
        after = IRBuilder()
        with after.loop("i", 1, 3):
            after.assign(after.arr("p", "i"), 0)
        window = diff_pair(before.build(), after.build(), origin="unit")
        assert window is not None
        assert ladder(window) == []


class TestProbes:
    def test_probes_attached_to_candidates(self):
        for candidate in ladder(SUB_SELF):
            assert len(candidate.probes) == 3

    def test_probes_read_inputs_and_run(self):
        candidate = ladder(SUB_SELF)[-1]
        for probe in candidate.probes:
            result = run_program(probe, inputs=[5, 7, 11, 13])
            assert result.output

    def test_shape_probes_separate_equality_classes(self):
        """A shape-rung probe must not accidentally satisfy the
        dropped equality: distinct before-side positions get distinct
        scalars, so a spec that needs opr_2 == opr_3 cannot fire on
        the shape probe of a window that had equal operands."""
        by_label = {c.rung_label: c for c in ladder(SUB_SELF)}
        if "shape" not in by_label:
            return
        probe = by_label["shape"].probes[0]
        reads = [q for q in probe if q.opcode.name == "READ"]
        assert len(reads) >= 2  # x - x splits into two classes

    def test_equal_probes_share_the_class(self):
        by_label = {c.rung_label: c for c in ladder(SUB_SELF)}
        probe = by_label["equal"].probes[0]
        reads = [q for q in probe if q.opcode.name == "READ"]
        assert len(reads) == 2  # result + one shared operand class
