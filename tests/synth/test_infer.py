"""End-to-end inference tests: mine -> generalize -> admit -> emit.

Also re-certifies the committed ``repro.opts.inferred`` catalog: the
module is regenerated from a fresh deterministic inference run and
must match what is checked in, so a stale or hand-edited entry cannot
silently survive; and every inferred spec must compile into the
shared discrimination network with the naive-matcher shadow check
green.
"""

from __future__ import annotations

import pytest

from repro.analysis.manager import AnalysisManager
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.genesis.matching import engine_for, spec_fingerprint
from repro.ir.interp import same_behaviour
from repro.opts.catalog import build_optimizer, standard_optimizers
from repro.opts.inferred import INFERRED_SPECS
from repro.synth.infer import (
    InferenceConfig,
    catalog_fingerprints,
    emit_module,
    run_inference,
)
from repro.workloads.synthetic import random_program

FAST = InferenceConfig(pairs=9, trace_programs=0, network_gate=False)


@pytest.fixture(scope="module")
def result():
    return run_inference(FAST)


# ----------------------------------------------------------------------
# the harness end to end
# ----------------------------------------------------------------------
def test_at_least_five_specs_admitted(result):
    assert len(result.admitted) >= 5, result.summary()


def test_unsound_templates_never_admitted(result):
    """The unsound plants (x/x -> 1, x mod 1 -> 0) must be refuted."""
    admitted = {spec.name for spec in result.admitted}
    assert not any("DIV" in name for name in admitted)
    assert not any("MOD" in name for name in admitted)
    rejected = {report.name for report in result.rejections}
    assert any("DIV" in name for name in rejected)
    assert any("MOD" in name for name in rejected)


def test_every_rejection_carries_a_gate(result):
    for report in result.rejections:
        assert report.rejected_gate is not None


def test_most_general_sound_rung_wins(result):
    """Each admitted spec's more-general rungs appear as rejections."""
    for spec in result.admitted:
        if spec.rung == 0:
            continue
        earlier = [
            r
            for r in result.rejections
            if r.name == spec.name and r.rung < spec.rung
        ]
        # collapsed rungs keep their ladder position, so the count may
        # be smaller than the rung index — but every more general rung
        # that survived collapsing must have been tried and rejected
        assert earlier, spec
        assert all(r.rung != spec.rung for r in earlier)


def test_admitted_specs_not_in_shipped_catalog(result):
    shipped = catalog_fingerprints()
    for spec in result.admitted:
        assert spec.fingerprint not in shipped


def test_deterministic(result):
    again = run_inference(FAST)
    assert [(s.name, s.fingerprint) for s in again.admitted] == [
        (s.name, s.fingerprint) for s in result.admitted
    ]
    assert [(r.name, r.rung) for r in again.rejections] == [
        (r.name, r.rung) for r in result.rejections
    ]


def test_admitted_specs_preserve_semantics(result):
    """Belt and braces: run each admitted optimizer standalone over
    fresh programs the admission corpus never saw."""
    for spec in result.admitted:
        optimizer = spec.optimizer()
        for seed in (101, 202, 303):
            program = random_program(seed, size=12)
            transformed = program.clone()
            run_optimizer(
                optimizer,
                transformed,
                DriverOptions(apply_all=True, max_applications=16),
            )
            assert same_behaviour(program, transformed), spec.name


# ----------------------------------------------------------------------
# the committed catalog module
# ----------------------------------------------------------------------
def test_committed_module_matches_regeneration():
    """src/repro/opts/inferred.py is exactly what the default
    deterministic inference run emits."""
    import repro.opts.inferred as module

    result = run_inference(InferenceConfig())
    with open(module.__file__) as handle:
        committed = handle.read()
    assert committed == emit_module(result)


def test_committed_specs_build_through_catalog():
    for name in INFERRED_SPECS:
        optimizer = build_optimizer(name)
        assert optimizer.name == name


def test_committed_specs_compile_into_shared_network():
    """Inferred specs join the standard catalog in one discrimination
    network; full_check shadows every network match with the naive
    matcher and raises on any disagreement."""
    catalog = list(standard_optimizers().values()) + [
        build_optimizer(name) for name in sorted(INFERRED_SPECS)
    ]
    options = DriverOptions(
        apply_all=True, max_applications=8, match_mode="network"
    )
    for seed in (7, 17):
        program = random_program(seed, size=12)
        manager = AnalysisManager(program)
        engine = engine_for(manager, full_check=True)
        engine.ensure_network(catalog)
        for optimizer in catalog:
            run_optimizer(optimizer, program, options, manager=manager)


def test_emit_module_output_is_importable(result, tmp_path):
    rendered = emit_module(result)
    namespace: dict = {}
    exec(compile(rendered, "<emitted>", "exec"), namespace)
    specs = namespace["INFERRED_SPECS"]
    assert sorted(specs) == sorted(s.name for s in result.admitted)
    for spec in result.admitted:
        rebuilt = spec.optimizer()
        assert spec_fingerprint(rebuilt) == spec.fingerprint
