"""Mining tests: before/after diffing, window keys, pair generation."""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.opts.catalog import build_optimizer
from repro.synth.mine import (
    PLANT_TEMPLATES,
    PairGenerator,
    diff_pair,
    mine_fuzz_corpus,
    mine_pairs,
)


def _program(statements):
    builder = IRBuilder()
    for target, left, symbol, right in statements:
        if symbol is None:
            builder.assign(target, left)
        else:
            builder.binary(target, left, symbol, right)
    builder.write(statements[-1][0])
    return builder.build()


class TestDiffPair:
    def test_single_statement_rewrite(self):
        before = _program([("a", 1, None, None), ("b", "x", "-", "x")])
        after = _program([("a", 1, None, None), ("b", 0, None, None)])
        window = diff_pair(before, after, origin="unit")
        assert window is not None
        assert len(window.before) == 1 and len(window.after) == 1
        assert window.origin == "unit"
        assert len(window.exemplar) == len(before)

    def test_identical_programs_yield_no_window(self):
        program = _program([("a", 1, None, None)])
        assert diff_pair(program, program.clone(), origin="unit") is None

    def test_wide_diffs_are_dropped(self):
        before = _program(
            [(name, "x", "+", "y") for name in "abcde"]
        )
        after = _program(
            [(name, "y", "*", "x") for name in "abcde"]
        )
        assert diff_pair(before, after, origin="unit", max_window=3) is None

    def test_window_key_is_renaming_invariant(self):
        first = diff_pair(
            _program([("a", "x", "-", "x")]),
            _program([("a", 0, None, None)]),
            origin="unit",
        )
        second = diff_pair(
            _program([("q", "w", "-", "w")]),
            _program([("q", 0, None, None)]),
            origin="unit",
        )
        assert first.key() == second.key()

    def test_window_key_separates_distinct_rewrites(self):
        sub = diff_pair(
            _program([("a", "x", "-", "x")]),
            _program([("a", 0, None, None)]),
            origin="unit",
        )
        mul = diff_pair(
            _program([("a", "x", "*", 0)]),
            _program([("a", 0, None, None)]),
            origin="unit",
        )
        assert sub.key() != mul.key()


class TestPairGenerator:
    def test_deterministic(self):
        first = PairGenerator(seed=3).pairs(9)
        second = PairGenerator(seed=3).pairs(9)
        for a, b in zip(first, second):
            assert a.origin == b.origin
            wa = diff_pair(a.before, a.after, a.origin)
            wb = diff_pair(b.before, b.after, b.origin)
            assert (wa is None) == (wb is None)
            if wa is not None:
                assert wa.key() == wb.key()

    def test_covers_every_template(self):
        pairs = PairGenerator(seed=0).pairs(len(PLANT_TEMPLATES))
        origins = {pair.origin.split(":")[1] for pair in pairs}
        assert origins == {t.key for t in PLANT_TEMPLATES}

    def test_mine_pairs_dedupes_by_key(self):
        generator = PairGenerator(seed=0)
        windows = mine_pairs(generator.pairs(2 * len(PLANT_TEMPLATES)))
        keys = [w.key() for w in windows]
        assert len(keys) == len(set(keys))


class TestTraceMining:
    def test_fuzz_corpus_windows_carry_optimizer_origin(self):
        optimizers = [build_optimizer("STR"), build_optimizer("ALG")]
        windows = mine_fuzz_corpus(optimizers, programs=24)
        assert windows, "trace arm mined nothing from 24 programs"
        for window in windows:
            assert window.origin.startswith("trace:")
            assert window.exemplar is not None
