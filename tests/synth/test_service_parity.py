"""Service-backed screening must be bit-identical to serial screening.

The legality gate can evaluate corpus programs as service jobs with
the candidate's GOSpeL source shipped inline in the job payload; the
admitted set and the rejection sequence must not depend on which
execution path ran.
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.synth.infer import InferenceConfig, run_inference

CONFIG = InferenceConfig(pairs=9, trace_programs=0, network_gate=False)


def test_service_backed_inference_matches_serial():
    serial = run_inference(CONFIG)
    with ServiceClient(backend="inprocess") as client:
        backed = run_inference(CONFIG, client=client)
    assert [(s.name, s.fingerprint) for s in serial.admitted] == [
        (s.name, s.fingerprint) for s in backed.admitted
    ]
    assert [
        (r.name, r.rung, r.rejected_gate) for r in serial.rejections
    ] == [
        (r.name, r.rung, r.rejected_gate) for r in backed.rejections
    ]


def test_inline_spec_source_travels_in_payload():
    """A service job can resolve an optimizer that is not in any
    catalog — the inference pipeline ships candidate sources this way."""
    from repro.ir.builder import IRBuilder
    from repro.service.job import Job
    from repro.synth.admit import SCREEN_OPTIONS

    source = """
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == sub AND type(Si.opr_1) == var AND
            type(Si.opr_2) == var AND type(Si.opr_3) == var AND
            Si.opr_2 == Si.opr_3;
  Depend
ACTION
  modify(Si.opc, assign);
  modify(Si.opr_2, 0);
  modify(Si.opr_3, none);
"""
    builder = IRBuilder()
    builder.read("x")
    builder.binary("a", "x", "-", "x")
    builder.write("a")
    program = builder.build()
    job = Job.from_program(
        program,
        ("NOT_IN_CATALOG",),
        SCREEN_OPTIONS,
        payload={"spec_sources": {"NOT_IN_CATALOG": source}},
    )
    with ServiceClient(backend="inprocess") as client:
        (result,) = client.run_batch([job])
    assert result.ok, result
    assert result.applications == 1
