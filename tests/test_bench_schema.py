"""Every committed BENCH_*.json conforms to the shared schema.

The benchmarks themselves live under ``benchmarks/`` and run outside
tier-1; this test pins the *shape* of their committed outputs (host
block, sizes list, speedup fields) so a benchmark edit cannot silently
drift the files the README and CI point at.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The benchmark outputs the repository commits.
BENCH_FILES = (
    "BENCH_match.json",
    "BENCH_dependence.json",
    "BENCH_service.json",
    "BENCH_ir.json",
)


def _load_schema():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_schema import validate_bench
    finally:
        sys.path.pop(0)
    return validate_bench


@pytest.mark.parametrize("name", BENCH_FILES)
def test_committed_bench_file_conforms(name):
    path = REPO_ROOT / name
    assert path.exists(), f"{name} is missing from the repository root"
    payload = json.loads(path.read_text())
    validate_bench = _load_schema()
    problems = validate_bench(payload)
    assert not problems, f"{name}: {problems}"


def test_validator_rejects_malformed_payloads():
    validate_bench = _load_schema()
    assert validate_bench({}) != []
    assert any(
        "host" in problem
        for problem in validate_bench({"sizes": [{"size": 1, "speedup": 2}]})
    )
    host = {
        "python": "3.11", "platform": "linux", "cpus": 4, "cpu_count": 8,
    }
    assert validate_bench({"host": host, "sizes": []}) != []
    assert any(
        "speedup" in problem
        for problem in validate_bench(
            {"host": host, "sizes": [{"size": 10}]}
        )
    )
    assert validate_bench(
        {"host": host, "sizes": [{"size": 10, "match_speedup": 2.5}]}
    ) == []
    # cpu_count is required; backend is optional but must be a string
    legacy = {"python": "3.11", "platform": "linux", "cpus": 4}
    assert any(
        "cpu_count" in problem
        for problem in validate_bench(
            {"host": legacy, "sizes": [{"size": 10, "speedup": 2.0}]}
        )
    )
    assert any(
        "backend" in problem
        for problem in validate_bench(
            {
                "host": dict(host, backend=7),
                "sizes": [{"size": 10, "speedup": 2.0}],
            }
        )
    )
    assert validate_bench(
        {
            "host": dict(host, backend="process"),
            "sizes": [{"size": 10, "speedup": 2.0}],
        }
    ) == []


def test_validator_rejects_non_increasing_sizes():
    """The sizes list is one scaling curve: strictly increasing."""
    validate_bench = _load_schema()
    host = {
        "python": "3.11", "platform": "linux", "cpus": 4, "cpu_count": 8,
    }
    def curve(*sizes):
        return {
            "host": host,
            "sizes": [{"size": s, "speedup": 1.5} for s in sizes],
        }
    assert validate_bench(curve(10, 100, 1000)) == []
    assert any(
        "exceed" in problem for problem in validate_bench(curve(10, 10))
    )
    assert any(
        "exceed" in problem for problem in validate_bench(curve(100, 10))
    )
