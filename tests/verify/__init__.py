"""Tests for the differential-testing verification subsystem."""
