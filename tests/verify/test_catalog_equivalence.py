"""Per-optimization equivalence regressions (satellite of the oracle).

For every one of the paper's ten optimizations this module keeps one
*positive* program — the optimization applies and the differential
oracle confirms semantic equivalence — and one *negative* program
whose preconditions must reject it outright.  Unlike the behavioural
tests in ``tests/opts/``, the positive half checks equivalence with
randomized input environments rather than a single fixed run.
"""

import pytest

from repro.frontend.lower import parse_program
from repro.genesis.driver import (
    DriverOptions,
    find_application_points,
    run_optimizer,
)
from repro.verify.oracle import check_equivalence

#: name -> (positive program, negative program)
CASES = {
    "CPP": (
        """
        program t
          integer x, y, z
          read x
          y = x
          z = y + 1
          write z
        end
        """,
        """
        program t
          integer x, y, z
          read x
          y = x
          x = 9
          z = y + 1
          write z
        end
        """,
    ),
    "CTP": (
        """
        program t
          integer n, m
          n = 5
          m = n * 2
          write m
        end
        """,
        """
        program t
          integer x, y
          x = 1
          if (y > 0) then
            x = 2
          end if
          y = x
          write y
        end
        """,
    ),
    "DCE": (
        """
        program t
          integer a, b, used
          a = 1
          b = a + 2
          used = 7
          write used
        end
        """,
        """
        program t
          integer a
          a = 1
          write a
        end
        """,
    ),
    "ICM": (
        """
        program t
          integer i, n
          real x, y, a(10)
          n = 4
          read y
          do i = 1, n
            x = y * 2.0
            a(i) = a(i) + x
          end do
          write x
        end
        """,
        """
        program t
          integer i, n
          real x, a(10)
          n = 4
          do i = 1, n
            x = i * 2.0
            a(i) = x
          end do
          write a(2)
        end
        """,
    ),
    "INX": (
        """
        program t
          integer i, j, n
          real a(10,10)
          n = 6
          do i = 1, n
            do j = 1, n
              a(i,j) = a(i,j) + 1.0
            end do
          end do
          write a(2,3)
        end
        """,
        """
        program t
          integer i, j, n
          real a(12,12)
          n = 6
          do i = 2, n
            do j = 1, 5
              a(i,j) = a(i-1,j+1) * 0.5
            end do
          end do
          write a(3,3)
        end
        """,
    ),
    "CRC": (
        """
        program t
          integer i, j, k, n
          real t3(8,8,8)
          n = 4
          do i = 1, n
            do j = 1, n
              do k = 1, n
                t3(i,j,k) = t3(i,j,k) + 1.0
              end do
            end do
          end do
          write t3(1,2,3)
        end
        """,
        """
        program t
          integer i, j, k, n
          real t3(8,8,8)
          n = 4
          do i = 2, n
            do j = 1, n
              do k = 1, 3
                t3(i,j,k) = t3(i-1,j,k+1) + 1.0
              end do
            end do
          end do
          write t3(2,2,3)
        end
        """,
    ),
    "BMP": (
        """
        program t
          integer i
          real a(20)
          do i = 3, 7
            a(i) = i * 2.0
          end do
          write a(5)
        end
        """,
        """
        program t
          integer i
          real a(20)
          do i = 1, 7
            a(i) = 1.0
          end do
          write a(5)
        end
        """,
    ),
    "PAR": (
        """
        program t
          integer i, n
          real a(10), b(10)
          n = 6
          do i = 1, n
            a(i) = b(i) * 2.0
          end do
          write a(3)
        end
        """,
        """
        program t
          integer i, n
          real a(10)
          n = 6
          do i = 2, n
            a(i) = a(i-1) * 2.0
          end do
          write a(3)
        end
        """,
    ),
    "LUR": (
        """
        program t
          integer i
          real a(10)
          do i = 1, 3
            a(i) = i * 2.0
          end do
          write a(2)
        end
        """,
        """
        program t
          integer i, n
          real a(10)
          read n
          do i = 1, n
            a(i) = 1.0
          end do
          write a(2)
        end
        """,
    ),
    "FUS": (
        """
        program t
          integer i, n
          real a(10), b(10)
          n = 6
          do i = 1, n
            a(i) = i * 1.0
          end do
          do i = 1, n
            b(i) = a(i) + 1.0
          end do
          write b(3)
        end
        """,
        """
        program t
          integer i, n
          real a(12), b(12)
          n = 6
          do i = 1, n
            a(i) = i * 1.0
          end do
          do i = 1, n
            b(i) = a(i+1) + 1.0
          end do
          write b(3)
        end
        """,
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_positive_program_applies_and_preserves_semantics(
    optimizers, name
):
    source, _ = CASES[name]
    program = parse_program(source)
    original = program.clone()
    result = run_optimizer(
        optimizers[name], program, DriverOptions(apply_all=True)
    )
    assert result.applications, f"{name} found no application point"
    report = check_equivalence(original, program, trials=3, seed=7)
    assert report.equivalent, f"{name}: {report.summary()}"
    assert report.conclusive_trials > 0


@pytest.mark.parametrize("name", sorted(CASES))
def test_negative_program_rejected_by_preconditions(optimizers, name):
    _, source = CASES[name]
    assert find_application_points(
        optimizers[name], parse_program(source)
    ) == []


def test_cases_cover_the_paper_catalog():
    from repro.opts.specs import PAPER_TEN

    assert set(CASES) == set(PAPER_TEN)
