"""The fault-injection harness and its acceptance criteria."""

import pytest

from repro.cli import main
from repro.frontend.lower import parse_program
from repro.frontend.unparse import unparse_program
from repro.genesis.driver import DriverOptions, run_optimizer
from repro.opts.catalog import build_optimizer
from repro.opts.specs import PAPER_TEN
from repro.verify.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosStats,
    chaotic,
    run_chaos,
)
from repro.workloads.programs import SOURCES

SIMPLE = """
program t
  integer x, y, z
  x = 1
  y = x + 2
  z = x + y
  write z
end
"""


class TestChaoticWrapper:
    def test_zero_rates_are_transparent(self):
        program = parse_program(SOURCES["newton"])
        reference = parse_program(SOURCES["newton"])
        stats = ChaosStats()
        wrapped = chaotic(
            build_optimizer("CTP"),
            ChaosConfig(seed=0, act_fault_rate=0.0),
            stats,
        )
        chaos_result = run_optimizer(
            wrapped, program, DriverOptions(apply_all=True)
        )
        plain_result = run_optimizer(
            build_optimizer("CTP"), reference, DriverOptions(apply_all=True)
        )
        assert chaos_result.applied == plain_result.applied
        assert unparse_program(program) == unparse_program(reference)
        assert stats.act_calls > 0 and stats.injected == 0

    def test_rate_one_always_faults_and_rolls_back_exactly(self):
        program = parse_program(SIMPLE)
        baseline = unparse_program(program, name=program.name)
        wrapped = chaotic(
            build_optimizer("CTP"), ChaosConfig(seed=0, act_fault_rate=1.0)
        )
        result = run_optimizer(
            wrapped, program, DriverOptions(apply_all=True, max_rollbacks=5)
        )
        assert not result.applications
        assert len(result.failures) == 5
        assert all(
            failure.error_type == "ChaosError"
            for failure in result.failures
        )
        # acceptance: rollback restores byte-identical unparse output
        assert unparse_program(program, name=program.name) == baseline

    def test_faults_are_deterministic_per_seed(self):
        def faults(seed):
            stats = ChaosStats()
            wrapped = chaotic(
                build_optimizer("CTP"),
                ChaosConfig(seed=seed, act_fault_rate=0.5),
                stats,
            )
            run_optimizer(
                wrapped,
                parse_program(SOURCES["newton"]),
                DriverOptions(apply_all=True, max_rollbacks=20),
            )
            return stats.act_calls, stats.raises

        assert faults(3) == faults(3)

    def test_corruption_is_caught_by_validation(self):
        program = parse_program(SOURCES["newton"])
        baseline = unparse_program(program, name=program.name)
        wrapped = chaotic(
            build_optimizer("CTP"),
            ChaosConfig(seed=0, act_fault_rate=0.0, corrupt_rate=1.0),
        )
        result = run_optimizer(
            wrapped, program,
            DriverOptions(apply_all=True, validate=True, max_rollbacks=3),
        )
        assert not result.applications
        assert result.failures
        assert all(f.phase == "validate" for f in result.failures)
        assert unparse_program(program, name=program.name) == baseline

    def test_stall_is_cut_by_the_deadline(self):
        program = parse_program(SOURCES["newton"])
        wrapped = chaotic(
            build_optimizer("CTP"),
            ChaosConfig(seed=0, act_fault_rate=0.0, stall_rate=1.0,
                        stall_seconds=0.05),
        )
        result = run_optimizer(
            wrapped, program,
            DriverOptions(apply_all=True, deadline_seconds=0.08),
        )
        assert result.stopped == "deadline"


class TestChaosCampaign:
    def test_paper_ten_with_heavy_faults_is_contained(self):
        # acceptance: a 10-optimization pipeline with >=20% injected
        # act faults terminates within budget, every application was
        # validated, and the result matches the fault-free pipeline
        report = run_chaos(
            ChaosConfig(seed=1, act_fault_rate=0.25),
            opt_names=PAPER_TEN,
            program_names=["newton", "fft"],
        )
        assert report.ok, report.summary()
        assert report.total_injected > 0
        for run in report.runs:
            assert run.valid
            assert run.rollbacks == run.stats.injected
            if not run.quarantined and not run.stopped:
                assert run.matches_baseline

    def test_deterministic_failure_is_quarantined_and_reported(self):
        always_broken = chaotic(
            build_optimizer("CTP"), ChaosConfig(seed=0, act_fault_rate=1.0)
        )
        report = run_chaos(
            ChaosConfig(seed=0, act_fault_rate=0.0),
            opt_names=("CTP", "DCE"),
            program_names=["newton"],
            optimizers={"CTP": always_broken},
            quarantine_after=3,
        )
        # the campaign completes and the quarantine is visible
        run = report.runs[0]
        assert run.quarantined == ["CTP"]
        assert "CTP" in report.summary()
        assert run.valid
        # quarantine excuses the baseline comparison
        assert run.matches_baseline is None

    def test_report_flags_divergence(self):
        # sanity for the checker itself: a run comparing different
        # outputs with no quarantine must fail
        report = run_chaos(
            ChaosConfig(seed=2, act_fault_rate=0.3),
            opt_names=PAPER_TEN,
            program_names=["gauss"],
        )
        for run in report.runs:
            assert run.ok == (not run.problems)


class TestChaosCli:
    def test_chaos_subcommand_contained(self, capsys):
        code = main([
            "chaos", "--seed", "3", "--programs", "newton,fft",
            "--corrupt-rate", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ALL CONTAINED" in out

    def test_chaos_subcommand_rejects_unknown_workload(self, capsys):
        code = main(["chaos", "--programs", "bogus"])
        assert code == 3
        assert "unknown workload" in capsys.readouterr().err

    def test_chaos_error_is_distinct(self):
        with pytest.raises(ChaosError):
            raise ChaosError("injected")
