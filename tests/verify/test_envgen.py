"""Unit tests for random input-environment generation."""

from repro.frontend.lower import parse_program
from repro.verify.envgen import (
    EnvironmentGenerator,
    environments_for,
)

SOURCE = """
program t
  integer i, n
  real a(12), b(12, 12), x, y
  read n
  do i = 1, 10
    a(i) = x + y
  end do
  b(2, 3) = a(1)
  write a(2)
end
"""


def test_environments_cover_all_names():
    program = parse_program(SOURCE)
    for env in environments_for(program, trials=2):
        assert set(program.scalar_names()) <= set(env.scalars)
        assert {"a", "b"} <= set(env.arrays)
        assert env.inputs  # read stream populated


def test_edge_environments_present():
    program = parse_program(SOURCE)
    labels = [env.label for env in environments_for(program, trials=3)]
    assert labels[:2] == ["zeros", "ones"]
    assert labels[2:] == ["random-0", "random-1", "random-2"]


def test_deterministic_for_seed():
    program = parse_program(SOURCE)
    first = environments_for(program, trials=3, seed=7)
    second = environments_for(program, trials=3, seed=7)
    for env_a, env_b in zip(first, second):
        assert env_a.scalars == env_b.scalars
        assert env_a.arrays == env_b.arrays
        assert env_a.inputs == env_b.inputs


def test_different_seeds_differ():
    program = parse_program(SOURCE)
    first = environments_for(program, trials=1, seed=1)[-1]
    second = environments_for(program, trials=1, seed=2)[-1]
    assert (
        first.scalars != second.scalars
        or first.arrays != second.arrays
        or first.inputs != second.inputs
    )


def test_rank_respected_and_bounds_derivable():
    program = parse_program(SOURCE)
    env = environments_for(program, trials=1)[0]
    assert all(len(index) == 1 for index in env.arrays["a"])
    assert all(len(index) == 2 for index in env.arrays["b"])
    bounds = env.bounds()
    assert len(bounds["a"]) == 1 and len(bounds["b"]) == 2
    low, high = bounds["a"][0]
    assert low <= 1 and high >= 12  # covers 1..12 indexing with offsets


def test_union_of_two_programs():
    before = parse_program(SOURCE)
    after = parse_program("""
    program t
      real z, q(12)
      z = 1.0
      q(1) = z
      write q(1)
    end
    """)
    env = EnvironmentGenerator(0).environments([before, after], trials=1)[0]
    assert "z" in env.scalars and "q" in env.arrays
    assert "x" in env.scalars and "a" in env.arrays
