"""The fuzz harness: campaigns, counterexample files, replay.

The ``fuzz``-marked campaigns run a deliberately small budget so the
tier-1 suite stays fast; ``genesis fuzz --iterations N`` scales the
same harness up from the shell.
"""

import pytest

from repro.verify.fixtures import BROKEN_SPECS, broken_optimizer
from repro.verify.fuzz import (
    FuzzConfig,
    load_repro,
    replay_repro,
    run_fuzz,
    write_repro,
)


@pytest.mark.fuzz
def test_catalog_survives_bounded_campaign():
    """Every catalog optimization, alone and as a pipeline, preserves
    semantics on a small random-program budget."""
    config = FuzzConfig(seed=0, iterations=6, trials=2)
    report = run_fuzz(config)
    assert report.ok, report.summary()
    assert report.programs == 6
    assert report.checks > 0
    assert report.applications > 0


@pytest.mark.fuzz
def test_broken_optimizer_caught_and_shrunk():
    """The acceptance fixture: an unsound transformation is detected,
    and its counterexample shrinks to at most 10 statements."""
    config = FuzzConfig(
        seed=0, iterations=10, opt_names=("BROKEN_CTP",),
        trials=2, pipeline=False,
    )
    report = run_fuzz(
        config, optimizers={"BROKEN_CTP": broken_optimizer("BROKEN_CTP")}
    )
    assert not report.ok
    for failure in report.failures:
        assert failure.opt_names == ("BROKEN_CTP",)
        assert failure.report.divergences
        assert failure.shrunk_statements is not None
        assert failure.shrunk_statements <= 10
        assert failure.shrunk_source


@pytest.mark.fuzz
def test_broken_dce_fixture_also_caught():
    # the unsound deletion needs a value defined for the *next* loop
    # iteration, which slightly larger random programs exhibit
    config = FuzzConfig(
        seed=0, iterations=19, opt_names=("BROKEN_DCE",),
        trials=2, pipeline=False, shrink=False, size=16,
    )
    report = run_fuzz(
        config, optimizers={"BROKEN_DCE": broken_optimizer("BROKEN_DCE")}
    )
    assert not report.ok


def test_campaign_deterministic_for_seed():
    config = FuzzConfig(seed=1, iterations=2, opt_names=("CTP", "DCE"),
                        trials=1)
    first = run_fuzz(config)
    second = run_fuzz(config)
    assert first.checks == second.checks
    assert first.applications == second.applications
    assert len(first.failures) == len(second.failures) == 0


def test_program_seeds_spread():
    config = FuzzConfig(seed=2, iterations=5)
    seeds = [config.program_seed(i) for i in range(5)]
    assert len(set(seeds)) == 5
    other = FuzzConfig(seed=3, iterations=5)
    assert set(seeds).isdisjoint(other.program_seed(i) for i in range(5))


def test_unknown_broken_fixture_rejected():
    with pytest.raises(KeyError):
        broken_optimizer("NOT_A_FIXTURE")
    assert set(BROKEN_SPECS) == {"BROKEN_CTP", "BROKEN_DCE"}


class TestCounterexampleFiles:
    @pytest.fixture(scope="class")
    def failure_report(self):
        config = FuzzConfig(
            seed=0, iterations=4, opt_names=("BROKEN_CTP",),
            trials=2, pipeline=False,
        )
        report = run_fuzz(
            config,
            optimizers={"BROKEN_CTP": broken_optimizer("BROKEN_CTP")},
        )
        assert not report.ok
        return report

    def test_write_and_load_roundtrip(self, failure_report, tmp_path):
        failure = failure_report.failures[0]
        path = write_repro(
            tmp_path / "case.f", failure, failure_report.config
        )
        metadata, program = load_repro(path)
        assert metadata["opts"] == "BROKEN_CTP"
        assert metadata["program-seed"] == str(failure.program_seed)
        assert "divergence" in metadata
        # reparsing may normalize structure (e.g. drop an empty else
        # branch), so the roundtrip never *grows* the program
        assert 0 < len(program) <= failure.shrunk_statements

    def test_replay_reproduces_divergence(self, failure_report, tmp_path):
        failure = failure_report.failures[0]
        path = write_repro(
            tmp_path / "case.f", failure, failure_report.config
        )
        report, applied = replay_repro(path)
        assert applied > 0
        assert not report.equivalent

    def test_replay_with_fixed_optimizer_is_clean(
        self, failure_report, tmp_path
    ):
        """Replaying the counterexample with the *sound* CTP shows the
        fix: either nothing applies or behaviour is preserved."""
        from repro.opts.catalog import build_optimizer

        failure = failure_report.failures[0]
        path = write_repro(
            tmp_path / "case.f", failure, failure_report.config
        )
        report, _applied = replay_repro(
            path, optimizers={"BROKEN_CTP": build_optimizer("CTP")}
        )
        assert report.equivalent

    def test_out_dir_writes_files(self, tmp_path):
        config = FuzzConfig(
            seed=0, iterations=2, opt_names=("BROKEN_CTP",),
            trials=2, pipeline=False, out_dir=str(tmp_path / "repros"),
        )
        report = run_fuzz(
            config,
            optimizers={"BROKEN_CTP": broken_optimizer("BROKEN_CTP")},
        )
        assert not report.ok
        for failure in report.failures:
            assert failure.repro_path is not None
            assert failure.repro_path.exists()
            replayed, _ = replay_repro(failure.repro_path)
            assert not replayed.equivalent

    def test_replay_requires_opts_header(self, tmp_path):
        path = tmp_path / "bare.f"
        path.write_text("program t\n real x\n write x\nend\n")
        with pytest.raises(ValueError):
            replay_repro(path)
