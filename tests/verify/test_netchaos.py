"""The network chaos campaign: all three failure families, one gate."""

from repro.verify.netchaos import (
    NetChaosConfig,
    NetChaosReport,
    NetChaosStats,
    run_network_chaos,
)


def test_seeded_campaign_converges_byte_identical(tmp_path):
    """Three rounds — crash-put, kill -9, sever — over one shared
    cache directory: every job must resolve byte-identical to the
    serial baseline, the disk tier must verify clean, and a warm
    restart must be served from disk."""
    config = NetChaosConfig(seed=3, rounds=3, jobs=3)
    report = run_network_chaos(config, scratch_dir=str(tmp_path))
    assert report.ok, report.summary()
    assert report.stats.resolved == 9
    assert report.stats.mismatches == 0
    assert report.stats.corrupt_entries == 0
    assert report.stats.kills >= 1, "the kill -9 round actually killed"
    assert report.stats.crash_exits >= 1, (
        "the crash-put round actually crashed a cache write"
    )
    assert report.warm_hit_rate >= 0.95
    assert report.stats.drains >= config.rounds, (
        "surviving servers drained cleanly (exit 0)"
    )


def test_report_verdict_logic():
    config = NetChaosConfig()
    stats = NetChaosStats(resolved=5, jobs=5)
    good = NetChaosReport(
        config=config, stats=stats, warm_hit_rate=1.0
    )
    assert good.ok
    assert "OK" in good.summary()

    stats_bad = NetChaosStats(resolved=5, jobs=5, mismatches=1)
    bad = NetChaosReport(
        config=config, stats=stats_bad, warm_hit_rate=1.0
    )
    assert not bad.ok
    assert "FAILED" in bad.summary()

    cold = NetChaosReport(
        config=config, stats=NetChaosStats(), warm_hit_rate=0.5
    )
    assert not cold.ok, "a cold warm-restart pass fails the campaign"
