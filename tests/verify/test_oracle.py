"""Unit tests for the equivalence oracle."""

import pytest

from repro.frontend.lower import parse_program
from repro.ir.builder import IRBuilder
from repro.verify.oracle import (
    EquivalenceOracle,
    check_equivalence,
)


def program_pair(source_before, source_after):
    return parse_program(source_before), parse_program(source_after)


class TestVerdicts:
    def test_identical_programs_equivalent(self):
        source = """
        program t
          integer i
          real a(12)
          do i = 1, 5
            a(i) = i * 2.0
          end do
          write a(3)
        end
        """
        before, after = program_pair(source, source)
        report = check_equivalence(before, after)
        assert report.equivalent
        assert report.conclusive_trials == report.trials
        assert "equivalent" in report.summary()

    def test_equivalent_rewrites_pass(self):
        # x*2 vs x+x: identical on every environment
        before, after = program_pair(
            """
            program t
              real x
              read x
              x = x * 2.0
              write x
            end
            """,
            """
            program t
              real x
              read x
              x = x + x
              write x
            end
            """,
        )
        assert check_equivalence(before, after).equivalent

    def test_output_divergence_detected(self):
        before, after = program_pair(
            """
            program t
              real x
              read x
              write x
            end
            """,
            """
            program t
              real x
              read x
              x = x + 1.0
              write x
            end
            """,
        )
        report = check_equivalence(before, after)
        assert not report.equivalent
        divergence = report.divergences[0]
        assert divergence.kind == "output"
        assert divergence.environment is not None
        assert "DIVERGENT" in report.summary()

    def test_trace_length_divergence(self):
        before, after = program_pair(
            "program t\n real x\n write x\nend",
            "program t\n real x\n write x\n write x\nend",
        )
        report = check_equivalence(before, after)
        assert not report.equivalent
        assert "length" in report.divergences[0].detail

    def test_dead_store_not_flagged_by_default(self):
        # DCE-style change: dead final assignment removed; the write
        # trace is identical even though final stores differ
        before, after = program_pair(
            """
            program t
              integer x
              x = 1
              write x
              x = 2
            end
            """,
            """
            program t
              integer x
              x = 1
              write x
            end
            """,
        )
        assert check_equivalence(before, after).equivalent

    def test_compare_stores_flags_dead_store_change(self):
        before, after = program_pair(
            """
            program t
              integer x
              x = 1
              write x
              x = 2
            end
            """,
            """
            program t
              integer x
              x = 1
              write x
            end
            """,
        )
        report = check_equivalence(before, after, compare_stores=True)
        assert not report.equivalent
        assert report.divergences[0].kind == "scalars"

    def test_compare_stores_checks_arrays(self):
        before, after = program_pair(
            """
            program t
              real a(12)
              a(1) = 1.0
              write a(1)
              a(2) = 5.0
            end
            """,
            """
            program t
              real a(12)
              a(1) = 1.0
              write a(1)
              a(2) = 6.0
            end
            """,
        )
        report = check_equivalence(before, after, compare_stores=True)
        assert not report.equivalent
        assert report.divergences[0].kind == "arrays"


class TestRuntimeErrorBehaviour:
    DIVIDES = """
    program t
      real x, y
      read x
      y = 1.0 / x
      write y
    end
    """

    def test_both_error_is_inconclusive_not_divergent(self):
        before, after = program_pair(self.DIVIDES, self.DIVIDES)
        report = check_equivalence(before, after)
        # the zeros environment drives x = 0 -> both sides divide by 0
        assert report.equivalent
        assert "zeros" in report.inconclusive

    def test_one_side_error_is_divergence(self):
        before, after = program_pair(
            self.DIVIDES,
            """
            program t
              real x, y
              read x
              y = 0.0
              write y
            end
            """,
        )
        report = check_equivalence(before, after)
        assert not report.equivalent
        assert any(d.kind == "error" for d in report.divergences)


class TestOracleMechanics:
    def test_deterministic_across_runs(self):
        b = IRBuilder()
        b.read("x")
        b.binary("y", "x", "*", 3)
        b.write("y")
        program = b.build()
        oracle = EquivalenceOracle(trials=4, seed=11)
        first = oracle.check(program, program.clone())
        second = oracle.check(program, program.clone())
        assert first.equivalent and second.equivalent
        assert first.trials == second.trials == 6  # 2 edge + 4 random

    def test_explicit_environments_respected(self):
        from repro.verify.envgen import InputEnvironment

        before, after = program_pair(
            "program t\n real x\n write x\nend",
            "program t\n real x\n x = x * 1.0\n write x\nend",
        )
        env = InputEnvironment(label="custom", scalars={"x": 4})
        report = EquivalenceOracle().check(before, after, [env])
        assert report.trials == 1
        assert report.equivalent

    def test_step_counts_recorded(self):
        source = """
        program t
          integer i
          real s
          do i = 1, 10
            s = s + 1.0
          end do
          write s
        end
        """
        before, after = program_pair(source, source)
        report = check_equivalence(before, after, trials=1)
        assert report.before_steps > 0
        assert report.before_steps == report.after_steps
