"""Unit tests for the counterexample shrinker."""

from repro.frontend.lower import parse_program
from repro.ir.quad import Opcode
from repro.ir.validate import validate_program
from repro.verify.shrink import shrink_program


def test_shrinks_to_the_failing_statement():
    # "failure" = the program writes the variable w somewhere
    program = parse_program("""
    program t
      integer i, n
      real a(12), w, x, y
      n = 5
      x = 1.0
      do i = 1, n
        a(i) = x * 2.0
      end do
      y = x + 3.0
      write w
      write y
    end
    """)

    def still_fails(candidate):
        return any(
            quad.opcode is Opcode.WRITE and str(quad.a) == "w"
            for quad in candidate
        )

    result = shrink_program(program, still_fails)
    assert still_fails(result.program)
    assert result.statements == 1
    assert result.statements < result.original_statements
    assert "shrunk" in str(result)


def test_deletes_whole_regions():
    program = parse_program("""
    program t
      integer i, j
      real a(12), s
      do i = 1, 5
        do j = 1, 5
          a(j) = a(j) + 1.0
        end do
      end do
      if (s > 0.0) then
        s = s - 1.0
      else
        s = s + 1.0
      end if
      s = 9.0
      write s
    end
    """)

    def still_fails(candidate):
        return any(
            quad.opcode is Opcode.ASSIGN and str(quad.result) == "s"
            and str(quad.a) == "9.0"
            for quad in candidate
        )

    result = shrink_program(program, still_fails)
    # both the loop nest and the conditional disappear wholesale
    assert all(not quad.is_structural() for quad in result.program)
    assert result.statements <= 2


def test_unwraps_loops_when_body_is_needed():
    program = parse_program("""
    program t
      integer i
      real a(12)
      do i = 1, 5
        a(2) = 7.0
      end do
      write a(2)
    end
    """)

    def still_fails(candidate):
        return any(
            quad.opcode is Opcode.ASSIGN and str(quad.result) == "a(2)"
            for quad in candidate
        )

    result = shrink_program(program, still_fails)
    assert result.statements == 1
    assert result.program[0].opcode is Opcode.ASSIGN


def test_candidates_always_structurally_valid():
    program = parse_program("""
    program t
      integer i
      real a(12), s
      do i = 1, 4
        if (s > 0.0) then
          a(i) = 1.0
        end if
      end do
      write s
    end
    """)
    seen = []

    def still_fails(candidate):
        candidate.check_structure()  # raises on torn IR
        seen.append(len(candidate))
        return any(quad.opcode is Opcode.WRITE for quad in candidate)

    result = shrink_program(program, still_fails)
    assert seen  # predicate exercised
    validate_program(result.program)


def test_respects_attempt_budget():
    program = parse_program("""
    program t
      real x
      x = 1.0
      x = 2.0
      x = 3.0
      write x
    end
    """)
    result = shrink_program(program, lambda p: len(p) > 0, max_attempts=2)
    assert result.attempts <= 2


def test_crashing_candidate_counts_as_not_failing():
    from repro.ir.interp import InterpError

    program = parse_program("""
    program t
      real x, y
      x = 1.0
      y = 2.0
      write x
    end
    """)

    def still_fails(candidate):
        if len(candidate) < 3:
            raise InterpError("boom")
        return True

    result = shrink_program(program, still_fails)
    assert result.statements == 3  # nothing below 3 was accepted


def test_unexpected_predicate_error_propagates():
    import pytest

    program = parse_program("""
    program t
      real x, y
      x = 1.0
      y = 2.0
      write x
    end
    """)

    def still_fails(candidate):
        if len(candidate) < 3:
            raise RuntimeError("a real bug, not a bad candidate")
        return True

    # only interpreter/IR rejections are swallowed; genuine bugs
    # surface instead of silently steering the search
    with pytest.raises(RuntimeError):
        shrink_program(program, still_fails)
