"""The --verify gate: driver, pipeline, session, and CLI wiring."""

import pytest

from repro.cli import main
from repro.frontend.lower import parse_program
from repro.genesis.driver import DriverOptions, apply_at_point, run_optimizer
from repro.genesis.pipeline import optimize
from repro.genesis.session import OptimizerSession
from repro.opts.catalog import build_optimizer
from repro.verify.fixtures import broken_optimizer
from repro.verify.oracle import VerificationError

#: a constant whose propagation is blocked by a conditional
#: redefinition: sound CTP rejects it, BROKEN_CTP propagates anyway
#: and miscompiles every environment where the branch is taken.
REDEFINED = """
program t
  integer x, y
  x = 1
  read y
  if (y /= 0) then
    x = 2
  end if
  write x
end
"""


class TestDriverGate:
    def test_sound_optimizer_passes_verification(self):
        program = parse_program(REDEFINED)
        result = run_optimizer(
            build_optimizer("CTP"), program,
            DriverOptions(apply_all=True, verify=True),
        )
        # whatever CTP did (including nothing), verification held
        assert result.optimizer == "CTP"

    def test_broken_optimizer_contained(self):
        program = parse_program(REDEFINED)
        pristine = list(map(str, parse_program(REDEFINED)))
        result = run_optimizer(
            broken_optimizer("BROKEN_CTP"), program,
            DriverOptions(apply_all=True, verify=True),
        )
        # every miscompiling application was rolled back and recorded
        assert result.failures and not result.applications
        assert all(f.phase == "verify" for f in result.failures)
        assert list(map(str, program)) == pristine

    def test_broken_optimizer_raises_on_request(self):
        program = parse_program(REDEFINED)
        pristine = list(map(str, parse_program(REDEFINED)))
        with pytest.raises(VerificationError) as excinfo:
            run_optimizer(
                broken_optimizer("BROKEN_CTP"), program,
                DriverOptions(
                    apply_all=True, verify=True, on_failure="raise"
                ),
            )
        assert "BROKEN_CTP" in str(excinfo.value)
        assert not excinfo.value.report.equivalent
        # "raise" still rolls back before propagating
        assert list(map(str, program)) == pristine

    def test_gate_off_lets_miscompile_through(self):
        program = parse_program(REDEFINED)
        result = run_optimizer(
            broken_optimizer("BROKEN_CTP"), program,
            DriverOptions(apply_all=True),
        )
        assert result.applications  # silently miscompiled

    def test_apply_at_point_verifies(self):
        program = parse_program(REDEFINED)
        pristine = list(map(str, parse_program(REDEFINED)))
        result = apply_at_point(
            broken_optimizer("BROKEN_CTP"), program, 0, verify=True
        )
        assert result.failures and not result.applications
        assert list(map(str, program)) == pristine
        with pytest.raises(VerificationError):
            apply_at_point(
                broken_optimizer("BROKEN_CTP"), program, 0, verify=True,
                options=DriverOptions(on_failure="raise"),
            )


class TestPipelineGate:
    def test_verified_pipeline_succeeds_on_catalog(self):
        program = parse_program(REDEFINED)
        report = optimize(
            program,
            [build_optimizer("CTP"), build_optimizer("DCE")],
            verify=True,
        )
        assert report.program is not program  # copy by default

    def test_verified_pipeline_rejects_broken(self):
        program = parse_program(REDEFINED)
        report = optimize(
            program, [broken_optimizer("BROKEN_CTP")], verify=True
        )
        # contained: the miscompile never survives into the output
        assert report.failures()
        assert report.total_applications == 0
        assert list(map(str, report.program)) == list(
            map(str, parse_program(REDEFINED))
        )
        with pytest.raises(VerificationError):
            optimize(
                program,
                [broken_optimizer("BROKEN_CTP")],
                options=DriverOptions(
                    apply_all=True, verify=True, on_failure="raise"
                ),
            )
        # the caller's program is untouched by the default copy
        assert list(map(str, program)) == list(
            map(str, parse_program(REDEFINED))
        )


class TestSessionGate:
    def test_verify_command_toggles(self):
        session = OptimizerSession.from_source(REDEFINED)
        assert not session.verify
        assert "True" in session.execute_command("verify on")
        assert session.verify
        assert "False" in session.execute_command("verify off")
        assert not session.verify

    def test_session_apply_respects_verify(self):
        session = OptimizerSession.from_source(
            REDEFINED, [broken_optimizer("BROKEN_CTP")]
        )
        session.verify = True
        before = session.show()
        result = session.apply("BROKEN_CTP")
        # contained: rolled back, recorded, session program intact
        assert result.failures and not result.applications
        assert session.show() == before

    def test_session_verified_sound_apply(self):
        session = OptimizerSession.from_source(
            REDEFINED, [build_optimizer("CTP")]
        )
        session.execute_command("verify on")
        session.execute_command("apply CTP all")  # must not raise


class TestCliWiring:
    def test_optimize_verify_flag(self, tmp_path, capsys):
        source = tmp_path / "p.f"
        source.write_text(REDEFINED)
        code = main(["optimize", str(source), "--opts", "CTP", "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified semantics-preserving" in out

    def test_fuzz_subcommand_clean_run(self, capsys):
        code = main([
            "fuzz", "--seed", "0", "--iterations", "2",
            "--opts", "CTP,DCE", "--trials", "1", "--no-pipeline",
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_fuzz_subcommand_catches_and_replays(self, tmp_path, capsys):
        out_dir = tmp_path / "repros"
        code = main([
            "fuzz", "--seed", "0", "--iterations", "4",
            "--opts", "BROKEN_CTP", "--trials", "2",
            "--no-pipeline", "--out", str(out_dir),
        ])
        assert code == 1
        repros = sorted(out_dir.glob("*.f"))
        assert repros
        capsys.readouterr()
        assert main(["fuzz", "--replay", str(repros[0])]) == 1
        assert "DIVERGENT" in capsys.readouterr().out
