"""Tests for the random program generator."""

import pytest

from repro.ir.interp import run_program
from repro.ir.printer import format_program
from repro.workloads.synthetic import random_program


def test_deterministic_per_seed():
    first = format_program(random_program(7))
    second = format_program(random_program(7))
    assert first == second


def test_different_seeds_differ():
    assert format_program(random_program(1)) != format_program(
        random_program(2)
    )


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_are_structured(seed):
    program = random_program(seed)
    program.check_structure()


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_execute(seed):
    result = run_program(random_program(seed))
    assert result.output  # always writes three scalars and one element


def test_size_parameter_scales_programs():
    small = len(random_program(3, size=4))
    large = len(random_program(3, size=40))
    assert large > small


def test_scalars_initialized_before_body():
    program = random_program(9)
    # the preamble assigns all six scalars first
    preamble = [str(q) for q in list(program)[:6]]
    assert all(":=" in line for line in preamble)
