"""Tests for the workload suite: all programs parse, run, and exhibit
the applicability shape the experiments rely on."""

import pytest

from repro.genesis.driver import find_application_points
from repro.ir.interp import run_program
from repro.workloads.programs import SOURCES
from repro.workloads.suite import full_suite, run_workload, workload


def test_suite_has_ten_programs():
    assert len(SOURCES) == 10


def test_workload_lookup():
    item = workload("fft")
    assert item.name == "fft"
    with pytest.raises(KeyError):
        workload("nope")


def test_full_suite_subset():
    subset = full_suite(["newton", "poly"])
    assert [w.name for w in subset] == ["newton", "poly"]


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_program_parses_and_runs(name):
    item = workload(name)
    result = run_workload(item)
    assert result.steps > 0
    assert result.output  # every program writes something


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_programs_produce_finite_output(name):
    import math

    item = workload(name)
    for value in run_workload(item).output:
        assert math.isfinite(value)


def test_load_returns_fresh_copies():
    item = workload("newton")
    first = item.load()
    second = item.load()
    first.remove(first.qids()[0])
    assert len(second) == len(first) + 1


class TestApplicabilityShape:
    """The structural properties the experiments depend on."""

    def test_icm_finds_nothing_anywhere(self, optimizers, suite):
        for item in suite:
            assert find_application_points(
                optimizers["ICM"], item.load()
            ) == [], item.name

    def test_cpp_in_exactly_two_programs(self, optimizers, suite):
        with_points = [
            item.name
            for item in suite
            if find_application_points(optimizers["CPP"], item.load())
        ]
        assert sorted(with_points) == ["newton", "track"]

    def test_fus_in_exactly_one_program(self, optimizers, suite):
        with_points = [
            item.name
            for item in suite
            if find_application_points(optimizers["FUS"], item.load())
        ]
        assert with_points == ["ordering"]

    def test_ctp_most_frequent(self, optimizers, suite):
        totals = {}
        for name in ("CTP", "CPP", "DCE", "INX", "PAR", "LUR"):
            totals[name] = sum(
                len(find_application_points(optimizers[name], item.load()))
                for item in suite
            )
        assert totals["CTP"] == max(totals.values())
        assert totals["CTP"] > 50

    def test_lur_needs_ctp_first(self, optimizers, suite):
        total = sum(
            len(find_application_points(optimizers["LUR"], item.load()))
            for item in suite
        )
        assert total == 0  # all loop bounds symbolic before CTP

    def test_ordering_program_has_the_trio(self, optimizers, suite_by_name):
        from repro.genesis.driver import DriverOptions, run_optimizer

        program = suite_by_name["ordering"].load()
        run_optimizer(optimizers["CTP"], program,
                      DriverOptions(apply_all=True))
        for name in ("FUS", "INX", "LUR"):
            assert find_application_points(
                optimizers[name], program.clone()
            ), name
